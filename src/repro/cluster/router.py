"""The scatter/gather router: one HTTP frontend over N shard servers.

A :class:`ClusterRouter` speaks the *same* wire protocol as a single
:class:`~repro.net.ViewServer` — the stock :class:`~repro.net.Client`
works against either — but owns no view state of its own.  Instead it

* **scatters writes**: ``POST /batch/<rel>`` splits the GMR batch per
  the :class:`~repro.cluster.ShardMap` (hash/range partitioned, or
  replicated when the views' algebra demands it) and fans the sub-
  batches to every replica of each owning shard;
* **gathers reads**: ``GET /views/<v>/snapshot`` sums per-shard
  snapshots for a partitioned view, and round-robins across replicas —
  failing over on connect/timeout errors — for a fully replicated one;
* **merges changefeeds**: a :class:`~repro.cluster.StreamMerger`
  subscribes to each shard's delta stream and the router re-stamps the
  merged events with its own strictly-increasing delivery seq, so
  every router subscriber sees a single monotone stream no matter how
  the shard streams interleave;
* **generalizes the drain barrier**: ``POST /drain`` drains every
  shard, waits until the merger has observed each shard's mark on
  every affected stream (proof that all owed deltas were merged and
  broadcast), then emits its *own* mark carrying the vector of
  per-shard seqs the barrier covered.

Correctness rests on two properties of the underlying system: GMRs
keep aggregate values in multiplicities, so adding per-shard partial
views of disjointly placed data *is* the global view; and placement is
inferred (:func:`~repro.service.infer_partition_plan`) so any relation
a view uses nonlinearly or cannot co-partition is replicated — exact,
if broadcast-heavy.  Placement constraints are **sticky**: the plan
only ever grows over the views created during the router's lifetime,
and a ``create_view`` whose inferred plan would re-place a relation
that already streamed batches is rejected (rows cannot be moved
retroactively).

The router's ``seq`` values are its own: ``/batch`` replies carry the
router ingest counter and merged deltas carry the router delivery
counter — neither equals any shard's seq (marks expose those as the
``shards`` vector).  Like the single server, ``subscribe(initial=True)``
is exact only when no producer streams concurrently.
"""

from __future__ import annotations

import http.client
import itertools
import queue
import threading
import time

from repro.exec import BackendError
from repro.net import Client, NetConnectError, NetError
from repro.obs import (
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    TRACE_HEADER,
    assemble,
    merge_expositions,
)
from repro.net.server import (
    _HEARTBEAT_S,
    _STREAM_POLL_S,
    CLOSE_SENTINEL,
    DEFAULT_STREAM_QUEUE_LIMIT,
    JsonHttpHandler,
    RateLimiter,
    StreamHub,
    StreamQueue,
)
from repro.net.wire import WIRE_VERSION, decode_gmr, dump_line, encode_delta, encode_gmr, encode_mark
from repro.ring import GMR
from repro.service import (
    ServiceError,
    ViewDelta,
    infer_partition_plan,
    is_replicated_view,
)
from repro.workloads.spec import as_query_spec
from repro.cluster.merge import StreamMerger
from repro.cluster.shardmap import ShardMap, parse_shard_spec

__all__ = ["ClusterRouter"]

#: read-path errors worth failing over to another replica: the reply
#: never arrived (transport) or the replica itself is broken (5xx) —
#: never deterministic 4xx, which every replica would repeat.
def _failover_worthy(exc: Exception) -> bool:
    if isinstance(exc, NetConnectError):
        return True
    if isinstance(exc, NetError):
        return exc.status >= 500
    return isinstance(exc, (OSError, http.client.HTTPException))


def _iter_tree_nodes(tree: dict):
    """Every span node of one assembled trace tree, any order."""
    stack = list(tree.get("spans", []))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.get("children", []))


def _tree_has_attr(tree: dict, key: str, value) -> bool:
    """True when any span of the tree carries ``key=value`` — with the
    same coalesced-flush special case as the single-server filter: a
    ``seq`` query also matches membership in a span's ``seqs`` list."""
    want = str(value)
    for node in _iter_tree_nodes(tree):
        attrs = node.get("attrs", {})
        if str(attrs.get(key)) == want:
            return True
        if key == "seq" and value in (attrs.get("seqs") or ()):
            return True
    return False


class ClusterRouter:
    """HTTP router tier over ``n_shards`` ViewServer replica groups.

    ``shards`` is a topology spec string (see
    :func:`~repro.cluster.parse_shard_spec`) or a pre-parsed group
    list; ``catalog`` the shared table catalog every view is parsed
    against.  ``auth_token`` is what *clients of the router* must
    present; ``shard_token`` is what the router presents to the shard
    servers (pass-through deployments use the same value for both).
    """

    def __init__(
        self,
        shards,
        catalog: dict[str, tuple[str, ...]],
        partition: str = "hash",
        boundaries: list | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
        shard_token: str | None = None,
        reconnect_timeout_s: float = 10.0,
        write_retry_timeout_s: float = 10.0,
        shard_call_timeout_s: float = 60.0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        stream_queue_limit: int = DEFAULT_STREAM_QUEUE_LIMIT,
        max_batches_per_sec: float | None = None,
    ):
        groups = (
            parse_shard_spec(shards) if isinstance(shards, str) else shards
        )
        self.catalog = {t: tuple(cols) for t, cols in catalog.items()}
        self.shardmap = ShardMap(
            groups, self.catalog, mode=partition, boundaries=boundaries
        )
        self.auth_token = auth_token
        self.shard_token = shard_token
        self.write_retry_timeout_s = write_retry_timeout_s
        self.shard_call_timeout_s = shard_call_timeout_s
        self.stream_queue_limit = stream_queue_limit
        # Per-client ingest quota, same semantics as on ViewServer: the
        # router is the tier that fronts untrusted producers, so the
        # quota usually lives here rather than on the shards.
        self.rate_limiter = (
            RateLimiter(max_batches_per_sec)
            if max_batches_per_sec is not None
            else None
        )
        self.throttled_counter = None

        self.hub = StreamHub()
        self.merger = StreamMerger(
            emit=self._merge_delta,
            emit_closed=self._emit_closed,
            shard_token=shard_token,
            reconnect_timeout_s=reconnect_timeout_s,
        )

        # View registry.  _spec_history keeps every spec ever created:
        # the partition plan derives from it and must stay monotone
        # (data already placed cannot move), so drops never shrink it.
        self._registry_lock = threading.RLock()
        self._views: dict[str, dict] = {}
        self._spec_history: dict[str, object] = {}
        self._placement_used: dict[str, object] = {}

        # Router-wide counters.
        self._seq_lock = threading.Lock()
        self._seq = 0  # ingest counter (per accepted /batch)
        self._emit_lock = threading.Lock()
        self._out_seq = 0  # delivery counter (per merged delta)
        self._mark_lock = threading.Lock()
        self._marks = 0
        self._rr = itertools.count()  # replica round-robin cursor

        # One keep-alive client (plus its lock: http.client is not
        # thread-safe) per shard endpoint, created lazily.
        self._clients_lock = threading.Lock()
        self._clients: dict[tuple[str, int], tuple[Client, threading.Lock]] = {}

        handler = type("_BoundRouterHandler", (_RouterHandler,), {"router": self})
        from repro.net.server import _Server

        self._httpd = _Server((host, port), handler)
        self._thread: threading.Thread | None = None
        self._closed = False

        # Router-tier telemetry: its own registry (the /metrics handler
        # additionally scrapes and merges the shards' expositions) and
        # its own trace ring (scatter/merge spans; /trace/recent fans
        # out to the shards and re-assembles cross-process trees).
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.started_at = time.time()
        self._obs_lock = threading.Lock()
        self._relation_counters: dict[str, object] = {}
        self._merged_counters: dict[str, object] = {}
        self._delivery_counters: dict[str, object] = {}
        self._lag_counters: dict[str, object] = {}
        self.registry.gauge_fn(
            "repro_router_seq", lambda: self._seq,
            help="router ingest sequence (accepted /batch requests)",
        )
        self.registry.gauge_fn(
            "repro_router_out_seq", lambda: self._out_seq,
            help="router delivery sequence (merged deltas broadcast)",
        )
        self.registry.gauge_fn(
            "repro_router_views", lambda: len(self._views),
            help="views registered through the router",
        )
        self.registry.gauge_fn(
            "repro_router_active_streams", self.hub.count,
            help="open merged push streams",
        )
        self.registry.gauge_fn(
            "repro_router_uptime_seconds",
            lambda: time.time() - self.started_at,
            help="seconds since the router started",
        )
        if self.rate_limiter is not None:
            self.throttled_counter = self.registry.counter(
                "repro_server_throttled_total",
                help="ingest requests rejected with 429 by the "
                     "per-client max_batches_per_sec quota",
            )

    def _labeled_counter(self, cache: dict, name: str, key: str,
                         label: str, help_text: str):
        with self._obs_lock:
            ctr = cache.get(key)
            if ctr is None:
                ctr = self.registry.counter(
                    name, help=help_text, labels={label: key}
                )
                cache[key] = ctr
        return ctr

    # ------------------------------------------------------------------
    # Shard transport
    # ------------------------------------------------------------------
    def _client(self, endpoint: tuple[str, int]):
        with self._clients_lock:
            entry = self._clients.get(endpoint)
            if entry is None:
                host, port = endpoint
                entry = (
                    Client(
                        host=host,
                        port=port,
                        timeout=self.shard_call_timeout_s,
                        auth_token=self.shard_token,
                    ),
                    threading.Lock(),
                )
                self._clients[endpoint] = entry
            return entry

    def _call(self, endpoint: tuple[str, int], fn):
        """Run ``fn(client)`` against one shard endpoint, serialized
        per endpoint (the keep-alive connection is single-flight)."""
        client, lock = self._client(endpoint)
        with lock:
            return fn(client)

    def _call_write(self, endpoint: tuple[str, int], fn):
        """Like :meth:`_call` but retries *connect-phase* failures — the
        request never left, so resending cannot double-apply — for up to
        ``write_retry_timeout_s``, riding out a shard restart."""
        deadline = time.monotonic() + self.write_retry_timeout_s
        while True:
            try:
                return self._call(endpoint, fn)
            except NetConnectError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def _fan(self, thunks: list):
        """Run shard calls concurrently; returns results/exceptions in
        order (one slow or dead shard must not serialize the rest)."""
        if len(thunks) == 1:
            try:
                return [thunks[0]()]
            except Exception as exc:  # noqa: BLE001 - collected
                return [exc]
        results: list = [None] * len(thunks)

        def run(i, thunk):
            try:
                results[i] = thunk()
            except Exception as exc:  # noqa: BLE001 - collected
                results[i] = exc

        threads = [
            threading.Thread(target=run, args=(i, t), daemon=True)
            for i, t in enumerate(thunks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    # ------------------------------------------------------------------
    # Merge path (called from shard-reader threads)
    # ------------------------------------------------------------------
    def _merge_delta(self, view: str, shard: int, envelope: dict) -> None:
        """Re-stamp one shard delta with the router delivery seq and
        broadcast it.  Stamping and broadcasting happen under one lock:
        releasing in between would let two readers swap their enqueue
        order and hand a subscriber seq 6 before seq 5."""
        env = dict(envelope)
        env["origin"] = {"shard": shard, "seq": env.get("seq")}
        # The envelope's trace field is the shard's publish-span
        # context: the merge span chains from it, and the envelope is
        # re-stamped with the merge span so subscriber-side delivery
        # chains from the merge — one trace across all three hops.
        parent = TraceContext.from_wire(envelope.get("trace"))
        with self._emit_lock:
            self._out_seq += 1
            env["seq"] = self._out_seq
            span = self.tracer.span(
                "merge", parent,
                view=view, shard=shard, seq=self._out_seq,
                origin_seq=env["origin"]["seq"],
            )
            if span.ctx is not None:
                env["trace"] = span.ctx.to_wire()
            self.hub.broadcast(view, ("delta", env))
            span.finish()
        self._labeled_counter(
            self._merged_counters, "repro_router_merged_total", view,
            "view", "shard deltas merged into the router stream",
        ).inc()

    def _emit_closed(self, view: str, reason: str) -> None:
        with self._emit_lock:
            self.hub.broadcast(view, ("closed", reason))

    def _next_mark(self) -> int:
        with self._mark_lock:
            self._marks += 1
            return self._marks

    @property
    def out_seq(self) -> int:
        with self._emit_lock:
            return self._out_seq

    # ------------------------------------------------------------------
    # View lifecycle
    # ------------------------------------------------------------------
    def create_view(
        self,
        name: str,
        source: str,
        backend: str = "rivm-batch",
        *,
        updatable=None,
        key_hints=None,
        options: dict | None = None,
    ) -> dict:
        """Create the view on every shard replica and start merging.

        The view definition must be SQL text (it is re-parsed by each
        shard against the same catalog).  Creation is all-or-nothing:
        a failure on any endpoint rolls back the ones that succeeded.
        """
        if not isinstance(source, str):
            raise ServiceError(
                "the cluster router only accepts SQL view definitions "
                "(the text is re-parsed by every shard)"
            )
        with self._registry_lock:
            if name in self._views:
                raise ServiceError(
                    f"view {name!r} already exists; drop_view() it first"
                )
            spec = as_query_spec(
                source,
                name=name,
                catalog=self.catalog or None,
                updatable=frozenset(updatable) if updatable else None,
                key_hints=key_hints,
            )
            history = dict(self._spec_history)
            history[name] = spec
            plan = infer_partition_plan(history.values())
            candidate_map = self.shardmap.with_plan(plan)
            for rel, used in self._placement_used.items():
                now = candidate_map.placement(rel)
                if now != used:
                    raise ServiceError(
                        f"creating view {name!r} would re-place relation "
                        f"{rel!r} ({used!r} -> {now!r}) but it already "
                        "streamed batches under the old placement; "
                        "restart the cluster to change partitioning"
                    )

            endpoints = self.shardmap.all_endpoints()
            created: list[tuple[str, int]] = []
            failure: Exception | None = None
            for ep in endpoints:
                try:
                    reply = self._call_write(
                        ep,
                        lambda c: c.create_view(
                            name,
                            source,
                            backend=backend,
                            updatable=updatable,
                            **(options or {}),
                        ),
                    )
                    created.append(ep)
                except Exception as exc:  # noqa: BLE001 - rolled back
                    failure = exc
                    break
            if failure is not None:
                for ep in created:
                    try:
                        self._call(ep, lambda c: c.drop_view(name))
                    except Exception:  # noqa: BLE001 - best effort
                        pass
                raise failure

            self._spec_history = history
            self.shardmap = candidate_map
            replicated = is_replicated_view(spec, plan)
            self._views[name] = {
                "view": name,
                "backend": reply["backend"],
                "streams": reply["streams"],
                "replicated": replicated,
                "batches_routed": 0,
                "subscribers": 0,
            }
            info = dict(self._views[name])
        # Pin one merged stream per shard to the shard's primary
        # replica — or just shard 0 for a fully replicated view, where
        # every shard serves the identical stream and reading more
        # than one would deliver each delta N times.
        shard_streams = (
            {0: self.shardmap.endpoints(0)[0]}
            if replicated
            else {
                s: self.shardmap.endpoints(s)[0]
                for s in range(self.shardmap.n_shards)
            }
        )
        self.merger.add_view(name, shard_streams)
        return info

    def drop_view(self, name: str) -> None:
        """Drop everywhere, preserving the single-server contract:
        subscribers receive every delta owed *before* the typed
        ``view dropped`` close."""
        with self._registry_lock:
            if name not in self._views:
                raise ServiceError(
                    f"unknown view {name!r}; registered views: "
                    + (", ".join(sorted(self._views)) or "<none>")
                )
        try:
            self.drain(view=name)
        except BackendError:
            pass  # a dead shard must not make the view undroppable
        self.merger.remove_view(name)
        for ep in self.shardmap.all_endpoints():
            try:
                self._call(ep, lambda c: c.drop_view(name))
            except NetError as exc:
                if exc.status != 404 and not _failover_worthy(exc):
                    raise
            except OSError:
                pass  # unreachable replica: it has no state to keep
        with self._registry_lock:
            self._views.pop(name, None)
        self._emit_closed(name, "view dropped")

    def views_info(self) -> dict:
        with self._registry_lock:
            return {name: dict(info) for name, info in self._views.items()}

    def view_info(self, name: str) -> dict:
        with self._registry_lock:
            if name not in self._views:
                raise ServiceError(
                    f"unknown view {name!r}; registered views: "
                    + (", ".join(sorted(self._views)) or "<none>")
                )
            return dict(self._views[name])

    def view_stats(self, name: str) -> dict:
        """Router-level stats plus the per-shard stats of one reachable
        replica per group."""
        info = self.view_info(name)
        shards: dict[str, dict] = {}
        for shard in range(self.shardmap.n_shards):
            reply = None
            for ep in self.shardmap.endpoints(shard):
                try:
                    reply = self._call(ep, lambda c: c.view_stats(name))
                    break
                except Exception as exc:  # noqa: BLE001 - reported
                    reply = {"error": str(exc)}
                    if not _failover_worthy(exc):
                        break
            shards[str(shard)] = reply
        info["shards"] = shards
        return info

    # ------------------------------------------------------------------
    # Scatter: writes
    # ------------------------------------------------------------------
    def ingest(
        self, relation: str, batch: GMR, trace: TraceContext | None = None
    ) -> tuple[int, tuple[str, ...]]:
        """Split one batch per the shard map and fan the parts out;
        returns the router ingest seq and the union of touched views.

        Mirrors ``ViewService.on_batch`` failure semantics: every
        reachable shard still receives its part even when another
        fails, then the first error is re-raised — a shard that missed
        the batch has missed it for good, and re-sending would
        double-apply to the shards that accepted it.

        ``trace`` (from the ``X-Repro-Trace`` header) becomes the
        parent of the router's admission span; every scatter call
        carries the admission context to its shard, so all per-shard
        work joins one trace.
        """
        parts = self.shardmap.split(relation, batch)
        with self._registry_lock:
            self._placement_used.setdefault(
                relation, self.shardmap.placement(relation)
            )
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        admission = self.tracer.span(
            "admission", trace, relation=relation, seq=seq, tier="router"
        )
        self._labeled_counter(
            self._relation_counters, "repro_router_batches_total", relation,
            "relation", "batches accepted by the router, by relation",
        ).inc()

        def scatter(ep, part, shard):
            with self.tracer.span(
                "scatter", admission.ctx,
                relation=relation, seq=seq, shard=shard,
                endpoint=f"{ep[0]}:{ep[1]}", tuples=len(part),
            ) as sp:
                return self._call_write(
                    ep, lambda c: c.batch(relation, part, trace=sp.ctx)
                )

        thunks = []
        for shard, part in enumerate(parts):
            if part.is_zero():
                continue
            for ep in self.shardmap.endpoints(shard):
                thunks.append(
                    lambda ep=ep, part=part, shard=shard: scatter(
                        ep, part, shard
                    )
                )
        touched: set[str] = set()
        first_error: Exception | None = None
        for result in self._fan(thunks):
            if isinstance(result, Exception):
                if first_error is None:
                    first_error = result
            else:
                touched.update(result["touched"])
        admission.set(touched=len(touched), shards=len(thunks))
        admission.finish()
        if first_error is not None:
            raise BackendError(
                f"batch {relation!r} (router seq {seq}) failed on at "
                f"least one shard replica: {first_error}"
            ) from first_error
        with self._registry_lock:
            for view in touched:
                if view in self._views:
                    self._views[view]["batches_routed"] += 1
        return seq, tuple(sorted(touched))

    # ------------------------------------------------------------------
    # Gather: reads
    # ------------------------------------------------------------------
    def _read_with_failover(self, endpoints, fn, what: str):
        start = next(self._rr)
        last: Exception | None = None
        for i in range(len(endpoints)):
            ep = endpoints[(start + i) % len(endpoints)]
            try:
                return self._call(ep, fn)
            except Exception as exc:  # noqa: BLE001 - classified below
                if not _failover_worthy(exc):
                    raise
                last = exc
        raise BackendError(
            f"{what}: no replica reachable "
            f"(last error from {len(endpoints)} endpoints: {last})"
        )

    def snapshot(self, name: str, consistent: bool = True) -> GMR:
        """Gather a view's contents.

        Fully replicated views read **one** replica, round-robin across
        every endpoint with failover — the serving path that scales
        reads with replicas.  Partitioned views scatter to one replica
        per shard (failover within the group) and sum the parts, which
        is exact because the parts are disjoint additive shares.
        ``consistent=False`` is passed through: each shard serves its
        last flushed state without the drain barrier.
        """
        info = self.view_info(name)

        def read(client: Client) -> GMR:
            return client.snapshot(name, consistent=consistent)

        if info["replicated"]:
            return self._read_with_failover(
                self.shardmap.all_endpoints(), read,
                f"snapshot of replicated view {name!r}",
            )
        total = GMR()
        for shard in range(self.shardmap.n_shards):
            part = self._read_with_failover(
                self.shardmap.endpoints(shard), read,
                f"snapshot of view {name!r} shard {shard}",
            )
            for t, m in part.items():
                total.add_tuple(t, m)
        return total

    # ------------------------------------------------------------------
    # The cross-shard barrier
    # ------------------------------------------------------------------
    def drain(
        self, view: str | None = None, timeout: float = 60.0
    ) -> tuple[int, dict[int, int], int]:
        """Drain every shard and release a router mark only once the
        barrier is *proven*.

        Steps: (1) ``POST /drain`` on every replica of every shard —
        each pinned stream's replica returns the mark token its drain
        queued behind the deltas it owed, and its service seq; (2) wait
        until the merger has observed each pinned stream's token
        (:meth:`StreamMerger.await_marks` — the proof that every owed
        delta was merged and broadcast); (3) under the emit lock,
        broadcast the router's own mark carrying the per-shard seq
        vector.  Returns ``(token, shard_seqs, streams_reached)``.

        Draining *all* replicas — not just the pinned ones — is what
        makes a follow-up ``consistent`` snapshot current no matter
        which replica the read round-robin lands on.  An unreachable
        non-pinned replica is skipped (reads fail over past it); an
        unreachable pinned replica fails the barrier with
        :class:`~repro.exec.BackendError`.
        """
        with self._registry_lock:
            if view is not None and view not in self._views:
                raise ServiceError(
                    f"unknown view {view!r}; registered views: "
                    + (", ".join(sorted(self._views)) or "<none>")
                )
            affected = [view] if view is not None else list(self._views)
            replicated = {
                v: self._views[v]["replicated"] for v in affected
            }

        # A barrier over a lost stream can never be proven: fail now
        # rather than drain shards and time out waiting for a mark no
        # reader will observe.
        required_keys = []
        for v in affected:
            required = [0] if replicated[v] else range(self.shardmap.n_shards)
            for shard in required:
                if self.merger.reader_endpoint(shard, v) is None:
                    raise BackendError(
                        f"cross-shard barrier failed: no live stream for "
                        f"view {v!r} shard {shard} (stream lost)"
                    )
                required_keys.append((shard, v))
        # ... and a shard broadcasts its mark only to subscriptions
        # present when its drain runs: wait out any in-flight reconnect
        # (e.g. right after a shard restart) before draining.
        self.merger.await_connected(required_keys, timeout=timeout)

        stream_tokens: dict[tuple[int, str], int] = {}
        shard_seqs: dict[int, int] = {}
        for shard in range(self.shardmap.n_shards):
            pinned = {
                v: self.merger.reader_endpoint(shard, v) for v in affected
            }
            for ep in self.shardmap.endpoints(shard):
                is_pinned = ep in pinned.values()
                try:
                    caller = self._call_write if is_pinned else self._call
                    reply = caller(
                        ep, lambda c: c.drain_info(view)
                    )
                except Exception as exc:  # noqa: BLE001 - classified
                    if is_pinned:
                        raise BackendError(
                            f"cross-shard barrier failed: cannot drain "
                            f"pinned replica {ep[0]}:{ep[1]} of shard "
                            f"{shard}: {exc}"
                        ) from exc
                    if _failover_worthy(exc):
                        continue  # dead replica; reads fail over anyway
                    raise
                for v, pin in pinned.items():
                    if pin == ep:
                        stream_tokens[(shard, v)] = reply["mark"]
                        shard_seqs[shard] = reply["seq"]
                shard_seqs.setdefault(shard, reply["seq"])

        self.merger.await_marks(stream_tokens, timeout=timeout)

        token = self._next_mark()
        with self._emit_lock:
            streams = self.hub.broadcast(
                view, ("mark", token, {str(s): q for s, q in shard_seqs.items()})
            )
        return token, shard_seqs, streams

    # ------------------------------------------------------------------
    # Aggregate info
    # ------------------------------------------------------------------
    def health(self) -> dict:
        shards = {}
        for shard in range(self.shardmap.n_shards):
            replicas = []
            for host, port in self.shardmap.endpoints(shard):
                try:
                    reply = self._call(
                        (host, port), lambda c: c.health()
                    )
                    replicas.append(
                        {
                            "host": host,
                            "port": port,
                            "ok": True,
                            "seq": reply.get("seq"),
                        }
                    )
                except Exception as exc:  # noqa: BLE001 - reported
                    replicas.append(
                        {
                            "host": host,
                            "port": port,
                            "ok": False,
                            "error": str(exc),
                        }
                    )
            shards[str(shard)] = replicas
        with self._seq_lock:
            seq = self._seq
        return {
            "status": "ok",
            "role": "router",
            "wire_version": WIRE_VERSION,
            "views": len(self.views_info()),
            "seq": seq,
            "n_shards": self.shardmap.n_shards,
            "shards": shards,
        }

    def metrics_exposition(self) -> str:
        """The router's own exposition merged with every reachable
        replica's ``GET /metrics`` scrape, each shard sample stamped
        with ``shard``/``replica`` labels so per-shard series stay
        distinguishable in one aggregated page.  Unreachable replicas
        are skipped (and counted) — a dead shard must not take the
        router's own telemetry down with it."""
        pages: list[tuple[dict, str]] = [({}, self.registry.render())]
        unreachable = 0
        for shard in range(self.shardmap.n_shards):
            for replica, ep in enumerate(self.shardmap.endpoints(shard)):
                try:
                    text = self._call(ep, lambda c: c.metrics_raw())
                except Exception:  # noqa: BLE001 - skipped, counted
                    unreachable += 1
                    continue
                pages.append(
                    ({"shard": str(shard), "replica": str(replica)}, text)
                )
        merged = merge_expositions(pages)
        return merged + (
            "# HELP repro_router_unreachable_replicas replicas that "
            "failed this scrape\n"
            "# TYPE repro_router_unreachable_replicas gauge\n"
            f"repro_router_unreachable_replicas {unreachable}\n"
        )

    def trace_recent(
        self,
        view: str | None = None,
        seq: int | None = None,
        trace_id: str | None = None,
        limit: int = 50,
    ) -> list[dict]:
        """Cross-process trace assembly: the router's own spans plus
        the spans of one reachable replica per shard, re-assembled so
        one ingested batch shows up as a single tree spanning
        admission -> scatter -> shard flush/maintain/publish -> merge.

        Shards return *assembled* trees; they are flattened back to
        spans, deduplicated by (trace id, span id), pooled with the
        router's ring, and re-assembled — a shard span whose parent is
        a router scatter span nests correctly only in this pooled view.
        """
        pool: dict[tuple[str, str], Span] = {}
        for s in self.tracer.spans():
            pool[(s.trace_id, s.span_id)] = s
        for shard in range(self.shardmap.n_shards):
            trees = None
            for ep in self.shardmap.endpoints(shard):
                try:
                    trees = self._call(
                        ep,
                        lambda c: c.trace_recent(
                            view=view, seq=None, trace_id=trace_id,
                            limit=limit,
                        ),
                    )
                    break
                except Exception as exc:  # noqa: BLE001 - failover
                    if not _failover_worthy(exc):
                        raise
            for tree in trees or []:
                for node in _iter_tree_nodes(tree):
                    span = Span.from_dict(
                        {k: v for k, v in node.items() if k != "children"}
                    )
                    pool[(span.trace_id, span.span_id)] = span
        trees = assemble(list(pool.values()))
        if trace_id is not None:
            trees = [t for t in trees if t["trace_id"] == trace_id]
        if view is not None:
            trees = [t for t in trees if _tree_has_attr(t, "view", view)]
        if seq is not None:
            trees = [t for t in trees if _tree_has_attr(t, "seq", seq)]
        trees.reverse()  # assemble() is oldest-first
        return trees[:max(0, limit)]

    def describe_shards(self) -> dict:
        info = self.shardmap.describe()
        info["streams"] = [
            {"shard": s, "view": v, "endpoint": [ep[0], ep[1]]}
            for s, v, ep in self.merger.streams()
        ]
        info["placement_used"] = {
            rel: (list(p) if isinstance(p, tuple) else p)
            for rel, p in sorted(self._placement_used.items())
        }
        return info

    def _subscriber_delta(self, name: str, change: int) -> None:
        with self._registry_lock:
            if name in self._views:
                self._views[name]["subscribers"] += change

    # ------------------------------------------------------------------
    # Serving lifecycle (mirrors ViewServer)
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterRouter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"clusterrouter:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop routing: end merged streams, stop shard readers, stop
        the accept loop.  The shard servers are *not* shut down — they
        are independent processes the router merely fronts."""
        if self._closed:
            return
        self._closed = True
        self.merger.close()
        self.hub.close_all()
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd.server_close()
        self._httpd.close_connections()
        with self._clients_lock:
            for client, _ in self._clients.values():
                client.close()
            self._clients.clear()

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else self.url
        return (
            f"ClusterRouter({state}, shards={self.shardmap.n_shards}, "
            f"views={len(self._views)})"
        )


class _RouterHandler(JsonHttpHandler):
    #: the owning router, injected by the bound subclass
    router: ClusterRouter = None

    @property
    def auth_token(self) -> str | None:
        return self.router.auth_token

    def _resolve(self, method: str, parts: list[str], query: dict):
        if method == "GET":
            if parts == ["health"]:
                return self._get_health
            if parts == ["shards"]:
                return self._get_shards
            if parts == ["stats"]:
                return self._get_stats
            if parts == ["views"]:
                return self._get_views
            if parts == ["metrics"]:
                return self._get_metrics
            if parts == ["trace", "recent"]:
                return lambda: self._get_trace_recent(query)
            if len(parts) == 3 and parts[0] == "views":
                name = parts[1]
                if parts[2] == "snapshot":
                    return lambda: self._get_snapshot(name, query)
                if parts[2] == "stats":
                    return lambda: self._get_view_stats(name)
                if parts[2] == "deltas":
                    return lambda: self._stream_deltas(name, query)
        elif method == "POST":
            if parts == ["views"]:
                return self._post_views
            if len(parts) == 2 and parts[0] == "batch":
                return lambda: self._post_batch(parts[1])
            if parts == ["drain"]:
                return self._post_drain
            if parts == ["shutdown"]:
                return self._post_shutdown
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "views":
                return lambda: self._delete_view(parts[1])
        return None

    # ------------------------------------------------------------------
    def _get_health(self):
        self._send_json(self.router.health())

    def _get_shards(self):
        self._send_json(self.router.describe_shards())

    def _get_stats(self):
        self._send_json(
            {
                "views": sorted(self.router.views_info()),
                "seq": self.router._seq,
                "out_seq": self.router.out_seq,
            }
        )

    def _get_views(self):
        self._send_json(self.router.views_info())

    def _get_view_stats(self, name: str):
        self._send_json(self.router.view_stats(name))

    def _get_metrics(self):
        self._send_text(
            self.router.metrics_exposition(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _get_trace_recent(self, query: dict):
        seq = query.get("seq", [None])[0]
        limit = query.get("limit", ["50"])[0]
        trees = self.router.trace_recent(
            view=query.get("view", [None])[0],
            seq=int(seq) if seq is not None else None,
            trace_id=query.get("trace_id", [None])[0],
            limit=int(limit),
        )
        self._send_json({"traces": trees})

    def _get_snapshot(self, name: str, query: dict):
        consistent = query.get("consistent", ["1"])[0] not in (
            "0", "false", "no",
        )
        with self.router._seq_lock:
            seq = self.router._seq
        snap = self.router.snapshot(name, consistent=consistent)
        self._send_json(
            {"view": name, "seq": seq, "snapshot": encode_gmr(snap)}
        )

    def _post_views(self):
        body = self._read_json()
        if not isinstance(body, dict) or "name" not in body or "source" not in body:
            raise ValueError(
                'POST /views needs {"name": ..., "source": "SELECT ..."} '
                '(optional: "backend", "updatable", "options")'
            )
        updatable = body.get("updatable")
        info = self.router.create_view(
            body["name"],
            body["source"],
            backend=body.get("backend", "rivm-batch"),
            updatable=frozenset(updatable) if updatable else None,
            options=body.get("options") or None,
        )
        self._send_json(
            {
                "view": info["view"],
                "backend": info["backend"],
                "streams": info["streams"],
                "replicated": info["replicated"],
            },
            status=201,
        )

    def _delete_view(self, name: str):
        self.router.drop_view(name)
        self._send_json({"dropped": name})

    def _post_batch(self, relation: str):
        router = self.router
        if self._throttled(router.rate_limiter, router.throttled_counter):
            return
        payload = self._read_json()
        if payload is None:
            raise ValueError("POST /batch/<relation> needs a GMR body")
        batch = decode_gmr(payload)
        trace = TraceContext.parse(self.headers.get(TRACE_HEADER))
        seq, touched = self.router.ingest(relation, batch, trace=trace)
        reply = {"relation": relation, "seq": seq, "touched": touched}
        if trace is not None:
            reply["trace_id"] = trace.trace_id
        self._send_json(reply)

    def _post_drain(self):
        body = self._read_json() or {}
        token, shard_seqs, streams = self.router.drain(body.get("view"))
        self._send_json(
            {
                "mark": token,
                "seq": self.router._seq,
                "shards": {str(s): q for s, q in shard_seqs.items()},
                "streams": streams,
            }
        )

    def _post_shutdown(self):
        self._send_json({"closing": True})
        # Close from a helper thread: close() joins the serve loop,
        # which must not happen on a handler thread the loop owns.
        threading.Thread(target=self.router.close, daemon=True).start()

    # ------------------------------------------------------------------
    # The merged push stream
    # ------------------------------------------------------------------
    def _stream_deltas(self, name: str, query: dict):
        initial = query.get("initial", ["0"])[0] in ("1", "true", "yes")
        router = self.router
        if query.get("from_seq", [None])[0] is not None:
            # Router out_seq is assigned at merge time and not logged
            # anywhere durable; shards resume *their* streams with
            # from_seq internally (see cluster.merge), but the merged
            # stream itself restarts from now.  A dropped router
            # subscriber re-subscribes with initial=1.
            return self._send_error_json(
                400, "the merged router stream does not support from_seq "
                "resume; re-subscribe with initial=1 for a snapshot"
            )
        router.view_info(name)  # 404 before committing to a stream
        if initial:
            # Barrier first: existing subscribers receive everything
            # owed, and — under the documented single-producer
            # discipline — nothing new flows until the snapshot below
            # is delivered, so snapshot + subsequent deltas is exact.
            router.drain(view=name)
        q = StreamQueue(router.stream_queue_limit)
        router.hub.register(name, q)
        router._subscriber_delta(name, +1)
        try:
            if initial:
                snap = router.snapshot(name)
                if not snap.is_zero():
                    q.put(
                        (
                            "delta",
                            encode_delta(
                                ViewDelta(name, None, router.out_seq, snap)
                            ),
                        )
                    )
            self._start_stream(name)
            self._pump(name, q)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; fall through to cleanup
        finally:
            router._subscriber_delta(name, -1)
            router.hub.unregister(name, q)
            self.close_connection = True

    def _pump(self, name: str, q: StreamQueue) -> None:
        router = self.router
        delivered = router._labeled_counter(
            router._delivery_counters, "repro_router_deliveries_total",
            name, "view", "merged deltas written to router subscribers",
        )
        idle_s = 0.0
        last_seq = 0
        while True:
            if q.lagged:
                router._labeled_counter(
                    router._lag_counters,
                    "repro_router_stream_lag_drops_total",
                    name, "view",
                    "router subscriber streams closed because the "
                    "reader fell behind the bounded queue",
                ).inc()
                self._close_stream("lagging", resume_from=last_seq)
                return
            try:
                item = q.get(timeout=_STREAM_POLL_S)
            except queue.Empty:
                if router.hub.closing:
                    self._close_stream("server closing")
                    return
                idle_s += _STREAM_POLL_S
                if idle_s >= _HEARTBEAT_S:
                    self._write_chunk(dump_line({
                        "type": "heartbeat",
                        "seq": router.out_seq,
                        "uptime_s": round(
                            time.time() - router.started_at, 3
                        ),
                    }))
                    idle_s = 0.0
                continue
            idle_s = 0.0
            if item is CLOSE_SENTINEL:
                self._close_stream("server closing")
                return
            kind = item[0]
            if kind == "delta":
                env = item[1]
                with router.tracer.span(
                    "deliver",
                    TraceContext.from_wire(env.get("trace")),
                    view=name, seq=env.get("seq"), tier="router",
                ):
                    self._write_chunk(dump_line(env))
                delivered.inc()
                seq = env.get("seq") or 0
                if seq > last_seq:
                    last_seq = seq
            elif kind == "mark":
                self._write_chunk(dump_line(encode_mark(item[1], item[2])))
            elif kind == "closed":
                self._close_stream(item[1])
                return
