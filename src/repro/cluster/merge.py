"""Merging per-shard delta streams into one router changefeed.

One :class:`StreamMerger` owns a reader thread per ``(shard, view)``
subscription.  Each reader holds a :class:`~repro.net.DeltaStream` to
its shard, forwards ``delta`` envelopes to the router's emit path
(which stamps the router-wide delivery seq and broadcasts to local
subscribers), and records shard ``mark`` tokens for the cross-shard
barrier (:meth:`StreamMerger.await_marks`).

**Reconnects are pinned to the endpoint.**  A broken stream reconnects
only to the *same* replica it was reading.  That is a correctness rule,
not a convenience: while the router is disconnected, that replica's
changefeed accumulates (the service skips delta computation with no
live subscriber), so the first delta after reconnecting covers the gap
exactly — the router being each replica's *sole* subscriber is what
makes shard restarts lossless.  Failing over to a *different* replica
would instead deliver that replica's changefeed-since-creation and
double-count everything already merged.

**Durable shards resume by seq.**  A shard running a
:class:`~repro.durability.DurableViewService` always consumes its
changefeed (every delta is written to its WAL before delivery), so the
accumulate-while-disconnected property above does not hold there.
Each reader therefore tracks the highest delta seq it merged and, on
*re*-connect, subscribes with ``from_seq=<that seq>`` — the shard
replays the missed tail from its WAL and splices into the live stream,
no gap, no duplicate.  A 400 reply (the shard is not durable) falls
back to a plain subscribe, which is exactly the accumulation contract
— unless the shard previously dropped this reader as ``lagging``
(deltas were discarded, only ``from_seq`` can recover them), in which
case the stream is declared lost rather than silently resuming with a
hole.  A 410 (the shard checkpoint-truncated past our seq) is likewise
terminal: the missed deltas are unrecoverable over the stream.

A reader that cannot reconnect within ``reconnect_timeout_s`` declares
the stream lost: router subscribers of the view receive a typed
``closed`` envelope (``reason`` naming the shard) instead of a silent
hang, and any barrier waiting on the stream aborts.
"""

from __future__ import annotations

import threading
import time

from repro.exec import BackendError
from repro.net import Client, NetConnectError, NetError

__all__ = ["StreamMerger"]

#: delay between reconnect attempts to a broken shard stream
_RECONNECT_POLL_S = 0.2


class _ShardReader(threading.Thread):
    """One pinned subscription: shard ``shard``, view ``view``, replica
    ``endpoint`` — forever (reconnects never move)."""

    def __init__(self, merger: "StreamMerger", shard: int, view: str,
                 endpoint: tuple[str, int]):
        super().__init__(
            name=f"shard-reader:{shard}:{view}", daemon=True
        )
        self.merger = merger
        self.shard = shard
        self.view = view
        self.endpoint = endpoint
        self.stopping = threading.Event()
        self._stream = None
        self._stream_lock = threading.Lock()
        #: highest delta seq merged from this shard — the from_seq a
        #: durable shard resumes from after a reconnect
        self.last_seq = 0
        self._ever_connected = False
        #: the shard dropped us as lagging: deltas were discarded, so
        #: only a from_seq resume is lossless — a plain-subscribe
        #: fallback would silently hide a hole
        self._resume_required = False

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the reader to exit; closes the live stream so a blocked
        ``readline`` returns instead of waiting out its timeout."""
        self.stopping.set()
        with self._stream_lock:
            if self._stream is not None:
                self._stream.close()

    # ------------------------------------------------------------------
    def _subscribe(self):
        host, port = self.endpoint
        client = Client(
            host=host, port=port,
            timeout=self.merger.reconnect_timeout_s,
            auth_token=self.merger.shard_token,
        )
        try:
            if not (self._ever_connected and self.last_seq):
                # First connect (or nothing merged yet): a plain
                # subscribe delivers the changefeed from here on.
                return client.subscribe(self.view)
            try:
                return client.subscribe(self.view, from_seq=self.last_seq)
            except NetError as exc:
                if exc.status != 400:
                    raise  # incl. 410: resume horizon passed, terminal
                if self._resume_required:
                    raise NetError(
                        410,
                        f"shard dropped this stream as lagging and does "
                        f"not support from_seq resume (not durable): "
                        f"{exc.message}",
                    ) from exc
                # Not durable: the replica's changefeed accumulated
                # while we were away, so a plain subscribe is lossless.
                return client.subscribe(self.view)
        finally:
            client.close()

    def run(self) -> None:
        deadline = None  # None while healthy; a wall-clock limit while broken
        while not self.stopping.is_set():
            try:
                stream = self._subscribe()
            except (NetError, OSError) as exc:
                if deadline is None:
                    deadline = time.monotonic() + self.merger.reconnect_timeout_s
                if time.monotonic() >= deadline:
                    self.merger._stream_lost(self, str(exc))
                    return
                self.stopping.wait(_RECONNECT_POLL_S)
                continue
            with self._stream_lock:
                if self.stopping.is_set():
                    stream.close()
                    return
                self._stream = stream
            deadline = None
            self._ever_connected = True
            self.merger._stream_connected(self)
            try:
                self._consume(stream)
            except (NetError, OSError) as exc:
                if self.stopping.is_set():
                    return
                # Broken mid-stream: start the reconnect window.
                deadline = time.monotonic() + self.merger.reconnect_timeout_s
                self.merger._stream_broken(self, str(exc))
            finally:
                with self._stream_lock:
                    self._stream = None
                stream.close()

    def _consume(self, stream) -> None:
        """Forward envelopes until the stream ends or we are stopped."""
        while not self.stopping.is_set():
            envelope = stream._read_envelope()
            kind = envelope.get("type")
            if kind == "delta":
                seq = envelope.get("seq") or 0
                if seq > self.last_seq:
                    self.last_seq = seq
                self.merger._on_delta(self, envelope)
            elif kind == "mark":
                self.merger._on_mark(self, envelope["token"])
            elif kind == "closed":
                # The shard ended the stream (server closing / view
                # dropped there).  Treated as a break: either we are
                # being stopped (coordinated drop) or the shard is
                # restarting and the reconnect loop takes over.
                reason = envelope.get("reason", "")
                if "lagging" in reason:
                    # The shard discarded queued deltas; only a
                    # from_seq resume closes the hole losslessly.
                    self._resume_required = True
                raise NetError(410, f"shard stream closed: {reason}")
            # heartbeats just prove liveness


class StreamMerger:
    """All shard subscriptions of one router, plus barrier bookkeeping.

    ``emit(view, shard, envelope)`` and ``emit_closed(view, reason)``
    are the router callbacks the merger drives; ``shard_token``
    authenticates the subscriptions.
    """

    def __init__(
        self,
        emit,
        emit_closed,
        shard_token: str | None = None,
        reconnect_timeout_s: float = 10.0,
    ):
        self._emit = emit
        self._emit_closed = emit_closed
        self.shard_token = shard_token
        self.reconnect_timeout_s = reconnect_timeout_s
        self._cond = threading.Condition()
        #: live readers by (shard, view)
        self._readers: dict[tuple[int, str], _ShardReader] = {}
        #: highest shard mark token observed per (shard, view)
        self._marks: dict[tuple[int, str], int] = {}
        #: streams given up on: (shard, view) -> reason
        self._lost: dict[tuple[int, str], str] = {}
        self._closing = False

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def add_view(
        self, view: str, shard_endpoints: dict[int, tuple[str, int]]
    ) -> None:
        """Start one pinned reader per shard for ``view``.

        ``shard_endpoints`` maps shard index -> the replica to read
        from (the router passes every shard for a partitioned view,
        just shard 0 for a fully replicated one — the replicas all
        serve the same stream, so reading more than one would deliver
        every delta N times).
        """
        with self._cond:
            if self._closing:
                return
            readers = []
            for shard, endpoint in sorted(shard_endpoints.items()):
                key = (shard, view)
                if key in self._readers:
                    continue
                reader = _ShardReader(self, shard, view, endpoint)
                self._readers[key] = reader
                self._marks.pop(key, None)
                self._lost.pop(key, None)
                readers.append(reader)
        for reader in readers:
            reader.start()

    def remove_view(self, view: str) -> None:
        """Stop and join every reader of ``view`` (coordinated drop)."""
        with self._cond:
            victims = [
                (key, r) for key, r in self._readers.items()
                if key[1] == view
            ]
            for key, _ in victims:
                del self._readers[key]
                self._marks.pop(key, None)
                self._lost.pop(key, None)
        for _, reader in victims:
            reader.stop()
        for _, reader in victims:
            reader.join(timeout=5)

    def views_of(self, shard: int) -> list[str]:
        with self._cond:
            return [v for s, v in self._readers if s == shard]

    def streams(self) -> list[tuple[int, str, tuple[str, int]]]:
        """Live (shard, view, endpoint) triples, for /shards reporting."""
        with self._cond:
            return [
                (s, v, r.endpoint)
                for (s, v), r in sorted(self._readers.items())
            ]

    def close(self) -> None:
        with self._cond:
            self._closing = True
            readers = list(self._readers.values())
            self._readers.clear()
            self._cond.notify_all()
        for reader in readers:
            reader.stop()
        for reader in readers:
            reader.join(timeout=5)

    # ------------------------------------------------------------------
    # Reader callbacks
    # ------------------------------------------------------------------
    def _live(self, reader: _ShardReader) -> bool:
        return self._readers.get((reader.shard, reader.view)) is reader

    def _on_delta(self, reader: _ShardReader, envelope: dict) -> None:
        if self._live(reader):
            self._emit(reader.view, reader.shard, envelope)

    def _on_mark(self, reader: _ShardReader, token: int) -> None:
        key = (reader.shard, reader.view)
        with self._cond:
            if self._readers.get(key) is reader:
                if token > self._marks.get(key, 0):
                    self._marks[key] = token
                self._cond.notify_all()

    def _stream_connected(self, reader: _ShardReader) -> None:
        with self._cond:
            self._cond.notify_all()

    def _stream_broken(self, reader: _ShardReader, reason: str) -> None:
        """Transient break: wake barrier waiters so they can re-check
        (they keep waiting — the reader is reconnecting)."""
        with self._cond:
            self._cond.notify_all()

    def _stream_lost(self, reader: _ShardReader, reason: str) -> None:
        """Terminal: the reconnect window expired."""
        key = (reader.shard, reader.view)
        with self._cond:
            if self._readers.get(key) is not reader:
                return
            del self._readers[key]
            self._lost[key] = reason
            self._cond.notify_all()
        self._emit_closed(
            reader.view,
            f"shard {reader.shard} stream lost "
            f"({reader.endpoint[0]}:{reader.endpoint[1]}): {reason}",
        )

    # ------------------------------------------------------------------
    # The cross-shard barrier
    # ------------------------------------------------------------------
    def await_marks(
        self,
        tokens: dict[tuple[int, str], int],
        timeout: float = 60.0,
    ) -> None:
        """Block until every ``(shard, view)`` stream in ``tokens`` has
        observed its shard mark token (the shard-side drain already
        queued the mark *behind* every delta it owed, so observing it
        proves those deltas were merged and broadcast).

        Raises :class:`~repro.exec.BackendError` if a required stream
        is lost or the timeout expires — a barrier that cannot be
        proven must fail loudly, never report success.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                pending = []
                for key, token in tokens.items():
                    if key in self._lost:
                        shard, view = key
                        raise BackendError(
                            f"cross-shard barrier failed: stream "
                            f"shard={shard} view={view!r} was lost "
                            f"({self._lost[key]})"
                        )
                    if key not in self._readers:
                        continue  # view dropped concurrently: no debt
                    if self._marks.get(key, 0) < token:
                        pending.append(key)
                if not pending:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackendError(
                        f"cross-shard barrier timed out after {timeout}s "
                        f"waiting on streams {sorted(pending)}"
                    )
                self._cond.wait(min(remaining, 0.5))

    def await_connected(
        self,
        keys,
        timeout: float = 60.0,
    ) -> None:
        """Block until every ``(shard, view)`` stream in ``keys`` holds
        a *live* subscription.

        The router calls this before issuing the shards' drains: a
        shard broadcasts its mark only to subscriptions present at
        drain time, so draining while a pinned reader is mid-reconnect
        (say, right after a shard restart) would lose the mark and
        stall the barrier for its full timeout.  Raises
        :class:`~repro.exec.BackendError` if a stream is lost or the
        timeout expires.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                pending = []
                for key in keys:
                    if key in self._lost:
                        shard, view = key
                        raise BackendError(
                            f"cross-shard barrier failed: stream "
                            f"shard={shard} view={view!r} was lost "
                            f"({self._lost[key]})"
                        )
                    reader = self._readers.get(key)
                    if reader is None:
                        continue  # view dropped concurrently: no debt
                    with reader._stream_lock:
                        if reader._stream is None:
                            pending.append(key)
                if not pending:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackendError(
                        f"cross-shard barrier timed out after {timeout}s "
                        f"waiting for streams {sorted(pending)} to "
                        "(re)connect"
                    )
                self._cond.wait(min(remaining, 0.25))

    def reader_endpoint(self, shard: int, view: str) -> tuple[str, int] | None:
        """The replica the live (shard, view) stream is pinned to."""
        with self._cond:
            reader = self._readers.get((shard, view))
            return reader.endpoint if reader is not None else None
