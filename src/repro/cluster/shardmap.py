"""The shard map: which shard owns which rows of which relation.

A :class:`ShardMap` binds three things together for the cluster router:

* the **topology** — an ordered list of shard *replica groups*, each a
  list of ``(host, port)`` endpoints hosting identical state (every
  write to the shard fans to all of its replicas; reads pick any one);
* the **placement** — a :class:`~repro.service.PartitionPlan` inferred
  from the hosted view definitions, saying per base relation whether
  its rows are hash/range-partitioned (and on which columns) or
  replicated to every shard;
* the **split function** — :meth:`ShardMap.split` turns one incoming
  GMR update batch into the per-shard sub-batches the router scatters.

The hash split reuses :func:`~repro.distributed.tags.partition_of` —
the same deterministic FNV-1a placement the in-process distributed
backends use — so a tuple lands on the same shard no matter which
process computed the split.  Partition keys are column *positions*
(see :class:`~repro.service.PartitionPlan`).  Range mode instead cuts
the first partition-key column at explicit ``boundaries``
(``len(boundaries) == n_shards - 1``, sorted ascending); relations
whose placement is *unconstrained* (key ``()``) fall back to whole-row
hashing even in range mode, since there is no key column to compare
against the cuts.
"""

from __future__ import annotations

import bisect

from repro.distributed.tags import partition_of
from repro.ring import GMR
from repro.service import PartitionPlan

__all__ = ["ShardMap", "parse_shard_spec"]


def parse_shard_spec(spec: str) -> list[list[tuple[str, int]]]:
    """Parse a ``--shards`` topology string into replica groups.

    Groups are comma-separated; replicas *within* a group are joined
    with ``+``::

        "127.0.0.1:9001,127.0.0.1:9002"            # 2 shards, no replicas
        "a:9001+b:9001,a:9002+b:9002"              # 2 shards x 2 replicas

    A bare port (``"9001"``) means ``127.0.0.1:9001``.
    """
    groups: list[list[tuple[str, int]]] = []
    for group_spec in spec.split(","):
        group: list[tuple[str, int]] = []
        for endpoint in group_spec.split("+"):
            endpoint = endpoint.strip()
            if not endpoint:
                continue
            host, sep, port = endpoint.rpartition(":")
            if not sep:
                host, port = "127.0.0.1", endpoint
            try:
                group.append((host, int(port)))
            except ValueError:
                raise ValueError(
                    f"bad shard endpoint {endpoint!r} "
                    "(expected host:port or port)"
                ) from None
        if group:
            groups.append(group)
    if not groups:
        raise ValueError(f"shard spec {spec!r} names no endpoints")
    return groups


class ShardMap:
    """Topology + placement + split function for one router.

    ``groups`` is the replica-group list (see :func:`parse_shard_spec`),
    ``catalog`` the shared table catalog (column positions for key
    lookups), ``plan`` the current placement.  The plan is swappable
    (:meth:`with_plan`) because the router re-infers it as views are
    created; topology and mode are fixed for the router's lifetime.
    """

    def __init__(
        self,
        groups: list[list[tuple[str, int]]],
        catalog: dict[str, tuple[str, ...]],
        plan: PartitionPlan | None = None,
        mode: str = "hash",
        boundaries: list | None = None,
    ):
        if mode not in ("hash", "range"):
            raise ValueError(f"unknown partition mode {mode!r}")
        if mode == "range":
            if not boundaries:
                raise ValueError(
                    "range partitioning needs --boundaries (the "
                    "n_shards-1 ascending cut values)"
                )
            if len(boundaries) != len(groups) - 1:
                raise ValueError(
                    f"range mode with {len(groups)} shards needs exactly "
                    f"{len(groups) - 1} boundaries, got {len(boundaries)}"
                )
            if sorted(boundaries) != list(boundaries):
                raise ValueError("range boundaries must be ascending")
        self.groups = [list(g) for g in groups]
        self.catalog = {t: tuple(cols) for t, cols in catalog.items()}
        self.plan = plan if plan is not None else PartitionPlan({}, frozenset())
        self.mode = mode
        self.boundaries = list(boundaries or [])

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.groups)

    def endpoints(self, shard: int) -> list[tuple[str, int]]:
        """The replica endpoints of one shard (writes go to all)."""
        return list(self.groups[shard])

    def all_endpoints(self) -> list[tuple[str, int]]:
        """Every endpoint across every group, group order first."""
        return [ep for group in self.groups for ep in group]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def with_plan(self, plan: PartitionPlan) -> "ShardMap":
        """The same topology under a new placement."""
        return ShardMap(
            self.groups, self.catalog, plan, self.mode,
            self.boundaries or None,
        )

    def placement(self, relation: str):
        """How ``relation`` is placed: a tuple of key-column positions
        (``()`` = whole-row) or the string ``"replicated"``.

        A relation no hosted view constrains — including one no view
        references at all — is replicated: always correct, and it keeps
        a batch for a not-yet-referenced relation from being scattered
        under a placement a later view creation might contradict.
        """
        if relation in self.plan.keys:
            return self.plan.keys[relation]
        return "replicated"

    # ------------------------------------------------------------------
    # The split function
    # ------------------------------------------------------------------
    def split(self, relation: str, batch: GMR) -> list[GMR]:
        """Per-shard sub-batches of one update batch (length
        ``n_shards``; shards owning none of the rows get an empty GMR,
        which the router skips on the wire)."""
        placement = self.placement(relation)
        n = self.n_shards
        if n == 1:
            return [GMR(dict(batch.data))]
        if placement == "replicated":
            return [GMR(dict(batch.data)) for _ in range(n)]
        positions = placement
        parts = [GMR() for _ in range(n)]
        if not positions:
            # Unconstrained: any disjoint split is exact; hash the whole
            # row so placement stays deterministic across processes.
            for t, m in batch.items():
                parts[partition_of(t, n)].add_tuple(t, m)
            return parts
        if self.mode == "hash":
            for t, m in batch.items():
                shard = partition_of(tuple(t[p] for p in positions), n)
                parts[shard].add_tuple(t, m)
            return parts
        # Range: cut the first key column at the boundaries.
        pos = positions[0]
        for t, m in batch.items():
            parts[bisect.bisect_right(self.boundaries, t[pos])].add_tuple(
                t, m
            )
        return parts

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-friendly summary (the router's ``GET /shards`` body)."""
        return {
            "n_shards": self.n_shards,
            "mode": self.mode,
            "boundaries": self.boundaries,
            "groups": [
                [[host, port] for host, port in group]
                for group in self.groups
            ],
            "plan": {
                "keys": {
                    rel: [
                        self.catalog[rel][p]
                        if rel in self.catalog and p < len(self.catalog[rel])
                        else p
                        for p in positions
                    ]
                    for rel, positions in self.plan.keys.items()
                },
                "replicated": sorted(self.plan.replicated),
            },
        }

    def __repr__(self) -> str:
        return (
            f"ShardMap({self.n_shards} shards, mode={self.mode!r}, "
            f"plan={self.plan.describe(self.catalog)})"
        )
