"""The sharded serving cluster: a scatter/gather router over N shards.

This package scales the network serving frontend (:mod:`repro.net`)
horizontally: a :class:`ClusterRouter` fronts any number of shard
:class:`~repro.net.ViewServer` replica groups, speaking the same wire
protocol clients already use against a single server.

* :class:`ClusterRouter` — the HTTP router: scatters update batches
  per the shard map, gathers/round-robins snapshots with replica
  failover, merges shard delta streams into one seq-consistent
  subscriber stream, and generalizes the drain barrier across shards
  (marks carry a per-shard seq vector);
* :class:`ShardMap` — topology (replica groups) + placement (the
  inferred :class:`~repro.service.PartitionPlan`) + the deterministic
  hash/range split function;
* :class:`StreamMerger` — the per-(shard, view) reader threads behind
  the merged changefeed, with endpoint-pinned reconnects and typed
  ``closed`` envelopes when a shard stream is lost for good.

See ARCHITECTURE.md ("Sharded cluster") for the placement rules, the
barrier protocol, and the failure semantics.
"""

from repro.cluster.merge import StreamMerger
from repro.cluster.router import ClusterRouter
from repro.cluster.shardmap import ShardMap, parse_shard_spec

__all__ = [
    "ClusterRouter",
    "ShardMap",
    "StreamMerger",
    "parse_shard_spec",
]
