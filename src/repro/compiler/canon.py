"""Expression canonicalisation for cross-view subplan sharing.

Two views created independently rarely spell a shared subplan the same
way: SQL aliases differ (``FROM R x`` vs ``FROM R y``), join factors
arrive in whatever order the ``FROM`` clause listed them, and the
workload generators pick their own column variable names.  The service
can only maintain a shared sub-view *once* if it recognises those
spellings as the same query, so this module defines a canonical form:

* **commutative-operand ordering** — ``Join`` and ``Union`` parts are
  sorted by an alpha-invariant shape key (bag join/union are
  commutative; part order in the AST is an operational hint only);
* **alias / column-position normalisation** — every column and
  assignment variable is renamed to ``_cN`` by first occurrence in a
  deterministic traversal of the ordered expression.

Two expressions with equal canonical forms are alpha-equivalent
modulo commutativity: identical results up to a column-name bijection
(the ``mapping`` returned by :func:`canonicalize` — composing one
mapping with the inverse of the other translates column names between
the two spellings).  The converse does not hold — equal-shape sort
ties keep their original order, so some equivalent spellings hash
apart — which is the sound direction: a missed match costs one extra
maintenance program, a false match would corrupt results.

Relation *names* are deliberately preserved: two structurally identical
queries over different tables are different queries.  Literals are
preserved too (``price > 10`` must not share with ``price > 20``).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.query.ast import (
    Arith,
    Assign,
    Cmp,
    Col,
    DeltaRel,
    Exists,
    Expr,
    Func,
    Join,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    ValueF,
    children,
    is_expr,
    rebuild,
)
from repro.query.ast import LOCATION_TRANSFORMERS
from repro.query.schema import base_relations, free_vars, rename_columns

__all__ = [
    "canonicalize",
    "fingerprint",
    "is_shareable",
    "shareable_subtrees",
]


def _collect_names(e: Expr, out: dict[str, None]) -> None:
    """Record every column/variable name in deterministic order."""
    if isinstance(e, (Rel, DeltaRel)):
        for c in e.cols:
            out.setdefault(c, None)
        return
    if isinstance(e, Sum):
        for c in e.group_by:
            out.setdefault(c, None)
        _collect_names(e.child, out)
        return
    if isinstance(e, ValueF):
        _collect_term_names(e.term, out)
        return
    if isinstance(e, Cmp):
        _collect_term_names(e.lhs, out)
        _collect_term_names(e.rhs, out)
        return
    if isinstance(e, Assign):
        out.setdefault(e.var, None)
        if is_expr(e.child):
            _collect_names(e.child, out)
        else:
            _collect_term_names(e.child, out)
        return
    if isinstance(e, (Repart, Scatter)):
        for c in e.keys:
            out.setdefault(c, None)
    for c in children(e):
        _collect_names(c, out)


def _collect_term_names(term, out: dict[str, None]) -> None:
    if isinstance(term, Col):
        out.setdefault(term.name, None)
    elif isinstance(term, Arith):
        _collect_term_names(term.lhs, out)
        _collect_term_names(term.rhs, out)
    elif isinstance(term, Func):
        for a in term.args:
            _collect_term_names(a, out)


@lru_cache(maxsize=8192)
def _normalize(e: Expr) -> Expr:
    """Sort commutative operands, recursively, by alpha-invariant key.

    The sort key of a part is the repr of the part's *own* canonical
    form, so the ordering does not depend on the names the enclosing
    query happened to pick.  The sort is stable: parts whose shapes tie
    (alpha-equivalent in isolation but linked differently to their
    siblings) keep their original relative order — sound, as above.
    """
    kids = children(e)
    if not kids:
        return e
    new_kids = tuple(_normalize(k) for k in kids)
    if isinstance(e, (Join, Union)):
        new_kids = tuple(sorted(new_kids, key=lambda p: repr(_canon(p)[0])))
    return rebuild(e, new_kids)


@lru_cache(maxsize=8192)
def _canon(e: Expr) -> tuple[Expr, tuple[tuple[str, str], ...]]:
    normal = _normalize(e)
    names: dict[str, None] = {}
    _collect_names(normal, names)
    mapping = {name: f"_c{i}" for i, name in enumerate(names)}
    return rename_columns(normal, mapping), tuple(mapping.items())


def canonicalize(e: Expr) -> tuple[Expr, dict[str, str]]:
    """The canonical form of ``e`` plus the original -> canonical column
    renaming (a bijection over the expression's distinct names).

    The canonical expression is a hashable AST value usable directly as
    a dictionary key; it is a *key*, never an executable plan — sorting
    may have moved interpreted operands ahead of their binders.
    """
    canon, pairs = _canon(e)
    return canon, dict(pairs)


def fingerprint(e: Expr) -> str:
    """A short stable hex digest of the canonical form, for display
    (DAG dumps, traces); use the canonical expression itself as the
    lookup key."""
    canon, _ = _canon(e)
    return hashlib.sha1(repr(canon).encode()).hexdigest()[:12]


def _contains_unshareable(e: Expr) -> bool:
    if isinstance(e, (DeltaRel, *LOCATION_TRANSFORMERS)):
        return True
    return any(_contains_unshareable(c) for c in children(e))


def is_shareable(e: Expr) -> bool:
    """Whether ``e`` can be materialized as a standalone shared node.

    It must be self-contained (no free variables bound by an enclosing
    context), reference at least one base relation (pure value
    expressions are not worth a node), and contain no delta relations
    or location transformers (those only appear in already-compiled
    maintenance programs, never in view definitions).
    """
    if not isinstance(e, (Join, Sum, Exists, Union)):
        return False
    if _contains_unshareable(e):
        return False
    if not base_relations(e):
        return False
    return not free_vars(e)


def shareable_subtrees(e: Expr) -> list[Expr]:
    """All shareable subtrees of ``e``, outermost first.

    The whole expression (when shareable) leads; nested occurrences
    follow in pre-order, so a caller that factors greedily prefers the
    largest match.  Structurally identical occurrences appear once.
    """
    out: list[Expr] = []
    seen: set[Expr] = set()

    def walk(node: Expr) -> None:
        if is_shareable(node) and node not in seen:
            seen.add(node)
            out.append(node)
        for c in children(node):
            walk(c)

    walk(e)
    return out
