"""Program- and service-level plan sharing.

Two granularities of sharing live here:

* **Statement identity** (:class:`PlanCache` / :func:`compile_program`)
  — the execution engines pay the lowering cost (schema resolution,
  join planning, closure composition — see :mod:`repro.eval.compiled`)
  at construction time by walking their program through
  :func:`compile_program`; the batch loop then runs pure pipeline
  lookups.  The cache is keyed on statement identity — the statement's
  expression, which is an immutable, structurally hashable AST — so
  statements shared between triggers (or between the workers of a
  simulated cluster) are lowered exactly once.

* **Service-wide subplan canonicalisation** (:func:`canonicalize` /
  :func:`fingerprint` / :func:`shareable_subtrees`, from
  :mod:`repro.compiler.canon`) — identity is too strict across
  *independently created views*, whose equivalent subplans differ in
  aliases, column names, and join order.  The canonical form erases
  exactly those differences, giving :class:`~repro.service.ViewService`
  the key for its shared-subplan DAG: each distinct sub-view is
  maintained once and dependent views consume its changefeed.
"""

from __future__ import annotations

from repro.eval.compiled import PlanCache
from repro.query.ast import LOCATION_TRANSFORMERS
from repro.compiler.canon import (
    canonicalize,
    fingerprint,
    is_shareable,
    shareable_subtrees,
)

__all__ = [
    "PlanCache",
    "compile_program",
    "canonicalize",
    "fingerprint",
    "is_shareable",
    "shareable_subtrees",
]


def compile_program(program, cache: PlanCache | None = None) -> PlanCache:
    """Lower every statement of a compiled maintenance program.

    Accepts anything with a ``triggers`` mapping of objects carrying
    ``statements`` — both :class:`~repro.compiler.ir.TriggerProgram`
    and :class:`~repro.distributed.program.DistributedProgram`.
    Top-level location transformers are skipped: the cluster executes
    them as data movement, never through an evaluator.
    """
    if cache is None:
        cache = PlanCache()
    for trigger in program.triggers.values():
        for stmt in trigger.statements:
            if isinstance(stmt.expr, LOCATION_TRANSFORMERS):
                continue
            cache.lookup(stmt.expr)
    return cache
