"""Program-level plan caching: lower every trigger statement once.

The execution engines pay the lowering cost (schema resolution, join
planning, closure composition — see :mod:`repro.eval.compiled`) at
construction time by walking their program through :func:`compile_program`;
the batch loop then runs pure pipeline lookups.  The cache is keyed on
statement identity — the statement's expression, which is an immutable,
structurally hashable AST — so statements shared between triggers (or
between the workers of a simulated cluster) are lowered exactly once.
"""

from __future__ import annotations

from repro.eval.compiled import PlanCache
from repro.query.ast import LOCATION_TRANSFORMERS

__all__ = ["PlanCache", "compile_program"]


def compile_program(program, cache: PlanCache | None = None) -> PlanCache:
    """Lower every statement of a compiled maintenance program.

    Accepts anything with a ``triggers`` mapping of objects carrying
    ``statements`` — both :class:`~repro.compiler.ir.TriggerProgram`
    and :class:`~repro.distributed.program.DistributedProgram`.
    Top-level location transformers are skipped: the cluster executes
    them as data movement, never through an evaluator.
    """
    if cache is None:
        cache = PlanCache()
    for trigger in program.triggers.values():
        for stmt in trigger.statements:
            if isinstance(stmt.expr, LOCATION_TRANSFORMERS):
                continue
            cache.lookup(stmt.expr)
    return cache
