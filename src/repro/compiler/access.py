"""Access-pattern analysis (paper Section 5.2.1).

For every statement, we replay the left-to-right binding discipline of
the evaluator and record, per materialized view, how it is accessed:

* ``scan``  — all columns unbound: a full ``foreach``;
* ``get``   — all columns bound: a point lookup (unique hash index);
* ``slice`` — some columns bound: an index scan (non-unique hash index
  over the bound columns).

The storage layer consumes this analysis to build exactly the indexes
each view needs — the paper's automatic index selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import (
    Assign,
    DeltaRel,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    Exists,
    is_expr,
)
from repro.query.schema import out_cols
from repro.compiler.ir import TriggerProgram


@dataclass
class AccessPattern:
    """Accumulated access patterns for one materialized view."""

    name: str
    scan: bool = False
    #: frozensets of bound-column combinations used for point lookups
    gets: set[frozenset[str]] = field(default_factory=set)
    #: frozensets of bound-column combinations used for index scans
    slices: set[frozenset[str]] = field(default_factory=set)

    def record(self, cols: tuple[str, ...], bound: set[str]) -> None:
        bound_here = frozenset(c for c in cols if c in bound)
        if not bound_here:
            self.scan = True
        elif len(bound_here) == len(cols):
            self.gets.add(bound_here)
        else:
            self.slices.add(bound_here)


def analyze_access_patterns(
    program: TriggerProgram,
) -> dict[str, AccessPattern]:
    """Analyze every trigger statement of a compiled program."""
    patterns: dict[str, AccessPattern] = {}

    def pat(name: str) -> AccessPattern:
        if name not in patterns:
            patterns[name] = AccessPattern(name)
        return patterns[name]

    def visit(e: Expr, bound: set[str]) -> set[str]:
        """Record accesses of ``e`` given ``bound`` columns; return the
        bound set extended by the columns ``e`` produces."""
        if isinstance(e, (Rel, DeltaRel)):
            pat(e.name).record(e.cols, bound)
            return bound | set(e.cols)
        if isinstance(e, Join):
            b = set(bound)
            for p in e.parts:
                b = visit(p, b)
            return b
        if isinstance(e, Union):
            for p in e.parts:
                visit(p, set(bound))
            return bound | set(out_cols(e))
        if isinstance(e, Sum):
            visit(e.child, set(bound))
            return bound | set(out_cols(e))
        if isinstance(e, Exists):
            visit(e.child, set(bound))
            return bound | set(out_cols(e))
        if isinstance(e, Assign) and is_expr(e.child):
            visit(e.child, set(bound))
            return bound | set(out_cols(e))
        return bound | set(out_cols(e))

    for trig in program.triggers.values():
        for stmt in trig.statements:
            visit(stmt.expr, set())
            # The written view is looked up by its full key on update.
            target = pat(stmt.target)
            if stmt.target_cols:
                target.gets.add(frozenset(stmt.target_cols))
            else:
                target.scan = True
    return patterns
