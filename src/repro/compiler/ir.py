"""Intermediate representation of compiled maintenance programs.

A :class:`TriggerProgram` is the unit the execution engines and the
distributed compiler consume:

* ``views`` — every materialized view, with its columns and its
  definition over base relations (used for initialization from a loaded
  database and for debugging);
* ``triggers`` — one :class:`Trigger` per updatable base relation,
  holding an ordered list of :class:`Statement`.

Statement scopes:

* ``"view"`` — the target is a materialized view; ``+=`` merges the
  evaluated RHS into it, ``:=`` replaces its contents (the
  re-evaluation strategy of Section 3.2.3).
* ``"batch"`` — the target is a per-batch transient (a pre-aggregated
  update or a domain expression); it lives in the delta namespace and
  is discarded once the batch is processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import Expr
from repro.query.schema import query_degree


@dataclass
class Statement:
    """One maintenance step: ``target op expr``."""

    target: str
    op: str  # '+=' or ':='
    target_cols: tuple[str, ...]
    expr: Expr
    scope: str = "view"  # 'view' or 'batch'

    def __repr__(self) -> str:
        cols = ", ".join(self.target_cols)
        return f"{self.target}({cols}) {self.op} {self.expr!r}"


@dataclass
class Trigger:
    """All maintenance statements for one base relation's update batch."""

    relation: str
    rel_cols: tuple[str, ...]
    statements: list[Statement] = field(default_factory=list)

    def __repr__(self) -> str:
        body = "\n  ".join(repr(s) for s in self.statements)
        return f"ON UPDATE {self.relation}:\n  {body}"


@dataclass
class ViewInfo:
    """A materialized view: its schema and defining query."""

    name: str
    cols: tuple[str, ...]
    definition: Expr

    @property
    def degree(self) -> int:
        """Number of base-relation references in the definition — the
        complexity measure that orders trigger statements."""
        return query_degree(self.definition)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.cols)}) := {self.definition!r}"


@dataclass
class TriggerProgram:
    """A compiled incremental maintenance program."""

    query_name: str
    top_view: str
    views: dict[str, ViewInfo]
    triggers: dict[str, Trigger]
    #: relations of the original query, with their column names
    base_relations: dict[str, tuple[str, ...]]

    def describe(self) -> str:
        """Human-readable dump, in the style of the paper's examples."""
        lines = [f"-- program for {self.query_name} (top view {self.top_view})"]
        lines.append("-- materialized views:")
        for v in sorted(self.views.values(), key=lambda v: -v.degree):
            lines.append(f"--   {v!r}")
        for trig in self.triggers.values():
            lines.append(repr(trig))
        return "\n".join(lines)

    def view_count(self) -> int:
        return len(self.views)

    def statement_count(self) -> int:
        return sum(len(t.statements) for t in self.triggers.values())
