"""The recursive IVM compiler (paper Sections 2.2, 3, 5.1).

``compile_query`` turns a view-definition query into a
:class:`~repro.compiler.ir.TriggerProgram`: a set of materialized views
that support each other's incremental maintenance, plus one trigger per
base relation whose statements refresh all affected views for a batch
update.  Statements are ordered by decreasing view complexity, which is
the data-flow DAG property the distributed compiler later relies on.
"""

from repro.compiler.ir import (
    Statement,
    Trigger,
    TriggerProgram,
    ViewInfo,
)
from repro.compiler.materializer import compile_query
from repro.compiler.preagg import apply_batch_preaggregation
from repro.compiler.access import AccessPattern, analyze_access_patterns
from repro.compiler.plancache import PlanCache, compile_program
from repro.compiler.canon import (
    canonicalize,
    fingerprint,
    is_shareable,
    shareable_subtrees,
)

__all__ = [
    "Statement",
    "Trigger",
    "TriggerProgram",
    "ViewInfo",
    "compile_query",
    "apply_batch_preaggregation",
    "AccessPattern",
    "analyze_access_patterns",
    "PlanCache",
    "compile_program",
    "canonicalize",
    "fingerprint",
    "is_shareable",
    "shareable_subtrees",
]
