"""Batch pre-aggregation (paper Section 3.3, "Preprocessing batches").

Batched incremental programs begin each trigger by materializing the
update batch: tuples failing the query's static conditions are filtered
out and the remaining tuples are projected onto — and aggregated over —
only the columns downstream statements use.  When the projected columns
have a small active domain the pre-aggregated batch collapses by orders
of magnitude (the paper's Q20/Q22 effect); when the delta's key is
functionally preserved the pre-aggregation is pure overhead (Q4, Q12,
Q13), which the paper measures too — so this pass materializes the
batch unconditionally in batch mode, exactly as the paper's batched
code generator does.
"""

from __future__ import annotations

from repro.query.ast import (
    Cmp,
    DeltaRel,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    ValueF,
    is_expr,
)
from repro.query.schema import free_vars, out_cols
from repro.compiler.ir import Statement, Trigger, TriggerProgram


def apply_batch_preaggregation(program: TriggerProgram) -> TriggerProgram:
    """Insert per-batch pre-aggregation statements into every trigger.

    For each trigger, every top-level ``DeltaRel`` occurrence is
    analyzed for the columns the surrounding statement actually needs
    and the static (batch-only) comparison factors that can be folded
    into the pre-aggregation.  Identical (columns, filters) pairs share
    one pre-aggregated batch (common subexpression elimination at the
    batch level).  Pre-aggregated batches are batch-scoped transients.

    Pure: the input program is left untouched and a new program is
    returned, so single-tuple and batched engines can be built from the
    same compiled program (and the pre-aggregation ablation compares
    genuinely different programs).
    """
    new_triggers = {
        rel_name: Trigger(trig.relation, trig.rel_cols, list(trig.statements))
        for rel_name, trig in program.triggers.items()
    }
    out = TriggerProgram(
        query_name=program.query_name,
        top_view=program.top_view,
        views=dict(program.views),
        triggers=new_triggers,
        base_relations=dict(program.base_relations),
    )
    for trig in out.triggers.values():
        _preaggregate_trigger(out, trig)
    return out


def _preaggregate_trigger(program: TriggerProgram, trig: Trigger) -> None:
    rel_name = trig.relation
    cache: dict[tuple, str] = {}
    pre_statements: list[Statement] = []
    counter = [0]

    def get_preagg(
        occ_cols: tuple[str, ...],
        needed: tuple[str, ...],
        filters: tuple[Expr, ...],
    ) -> str:
        """Materialize ``Sum[needed](ΔR(occ_cols) ⋈ filters)`` once.

        ``occ_cols`` is the column naming of this particular delta
        occurrence (self-joins rename the same relation's columns).
        """
        key = (occ_cols, needed, filters)
        if key in cache:
            return cache[key]
        counter[0] += 1
        name = f"{trig.relation}_PRE{counter[0]}_{program.query_name}"
        delta_ref = DeltaRel(rel_name, occ_cols)
        body: Expr = (
            delta_ref
            if not filters
            else Join((delta_ref,) + filters)
        )
        pre_statements.append(
            Statement(name, ":=", needed, Sum(needed, body), scope="batch")
        )
        cache[key] = name
        return name

    new_statements = []
    for stmt in trig.statements:
        new_statements.append(
            Statement(
                stmt.target,
                stmt.op,
                stmt.target_cols,
                _rewrite_stmt_expr(stmt.expr, stmt.target_cols, rel_name,
                                   trig.rel_cols, get_preagg),
                stmt.scope,
            )
        )
    trig.statements = pre_statements + new_statements


def _rewrite_stmt_expr(
    e: Expr,
    target_cols: tuple[str, ...],
    rel_name: str,
    rel_cols: tuple[str, ...],
    get_preagg,
) -> Expr:
    """Replace top-level DeltaRel factors with pre-aggregated batches."""
    if isinstance(e, Union):
        return Union(
            tuple(
                _rewrite_stmt_expr(p, target_cols, rel_name, rel_cols, get_preagg)
                for p in e.parts
            )
        )
    if isinstance(e, Sum):
        inner = e.child
        factors = list(inner.parts) if isinstance(inner, Join) else [inner]
        new_factors = _rewrite_term(
            factors, e.group_by, rel_name, rel_cols, get_preagg
        )
        body = (
            new_factors[0] if len(new_factors) == 1 else Join(tuple(new_factors))
        )
        return Sum(e.group_by, body)
    if isinstance(e, Join):
        new_factors = _rewrite_term(
            list(e.parts), target_cols, rel_name, rel_cols, get_preagg
        )
        if len(new_factors) == 1:
            return new_factors[0]
        return Join(tuple(new_factors))
    if isinstance(e, DeltaRel) and e.name == rel_name:
        new_factors = _rewrite_term(
            [e], target_cols, rel_name, rel_cols, get_preagg
        )
        return new_factors[0]
    return e


def _rewrite_term(
    factors: list[Expr],
    target_cols: tuple[str, ...],
    rel_name: str,
    rel_cols: tuple[str, ...],
    get_preagg,
) -> list[Expr]:
    delta_positions = [
        i
        for i, f in enumerate(factors)
        if isinstance(f, DeltaRel) and f.name == rel_name
    ]
    if not delta_positions:
        return factors

    # Only the first delta occurrence of the term is pre-aggregated;
    # later occurrences (ΔR⋈ΔR self-join terms) keep the raw batch.
    first = delta_positions[0]
    occ = factors[first]
    occ_cols = set(occ.cols)

    # Static conditions: comparison factors whose variables are fully
    # supplied by this delta occurrence's columns (they can run during
    # pre-aggregation, before any view is touched).
    static_positions = [
        i
        for i, f in enumerate(factors)
        if isinstance(f, Cmp) and free_vars(f) <= occ_cols and i != first
    ]

    # Value factors fed solely by the delta are *absorption* candidates:
    # folding ``[qty]`` into the pre-aggregation weights the batch
    # multiplicities by the value, so the value column itself can be
    # projected away — this is what collapses Q1's batch onto its
    # handful of (returnflag, linestatus) groups in the paper.
    value_candidates = [
        i
        for i, f in enumerate(factors)
        if isinstance(f, ValueF) and free_vars(f) <= occ_cols and i != first
    ]

    # Columns of the delta needed by everything else in the statement.
    needed: set[str] = set(target_cols)
    for j, f in enumerate(factors):
        if j == first or j in static_positions or j in value_candidates:
            continue
        needed |= set(out_cols(f)) | set(free_vars(f))

    # A value factor is absorbed only when its columns are needed by
    # nothing else (otherwise the column must survive as a key and the
    # factor stays outside).
    absorbed = [
        i for i in value_candidates if not (free_vars(factors[i]) & needed)
    ]
    for i in value_candidates:
        if i not in absorbed:
            needed |= set(free_vars(factors[i]))

    keep = tuple(c for c in occ.cols if c in needed)

    filters = tuple(factors[i] for i in static_positions) + tuple(
        factors[i] for i in absorbed
    )
    name = get_preagg(occ.cols, keep, filters)

    out: list[Expr] = []
    skip = set(static_positions) | set(absorbed)
    for j, f in enumerate(factors):
        if j == first:
            out.append(DeltaRel(name, keep))
        elif j in skip:
            continue
        else:
            out.append(f)
    return out
