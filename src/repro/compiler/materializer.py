"""The recursive materialization procedure (paper Sections 2.2 and 3).

``compile_query`` starts from the top-level view and, for each base
relation, derives the (simplified, domain-restricted) delta query.  The
update-independent parts of every delta term — maximal connected
components of the term's join graph — are materialized as auxiliary
views projected onto exactly the columns the rest of the term needs.
Auxiliary views are compiled recursively, so each derivation step
lowers the query degree until deltas reference no base tables at all.
Structurally identical view definitions are shared across the whole
hierarchy, and (footnote 2 of the paper) no view ever stores a result
with a disconnected join graph.

Queries whose nested aggregates cannot be domain-restricted (the
extracted domain binds no equality-correlated variable, Section 3.2.3)
are maintained by re-evaluation over materialized pieces instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.delta import derive_delta, extract_domain
from repro.delta.domain import domain_binds_correlated_var
from repro.delta.simplify import (
    from_polynomial,
    is_statically_zero,
    simplify,
    to_polynomial,
)
from repro.query.ast import (
    Assign,
    Cmp,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    ValueF,
    is_expr,
)
from repro.query.schema import (
    base_relations,
    delta_relations,
    free_vars,
    has_relations,
    out_cols,
)
from repro.compiler.ir import Statement, Trigger, TriggerProgram, ViewInfo


@dataclass
class _Context:
    """Mutable compilation state shared across the view hierarchy."""

    prefix: str
    views: dict[str, ViewInfo] = field(default_factory=dict)
    #: structural definition -> view name, for cross-hierarchy sharing
    defn_index: dict[Expr, str] = field(default_factory=dict)
    #: views whose triggers still need deriving
    worklist: list[str] = field(default_factory=list)
    counter: int = 0
    #: whether assignment/Exists deltas use the domain-restricted form
    #: (Section 3.2.2); False compiles the plain recompute-twice rule
    #: and exists only for the domain-extraction ablation.
    use_domain: bool = True

    def materialize(self, definition: Expr, cols: tuple[str, ...]) -> str:
        """Create (or reuse) a materialized view for ``definition``."""
        definition = simplify(definition)
        existing = self.defn_index.get(definition)
        if existing is not None:
            return existing
        self.counter += 1
        name = f"{self.prefix}_V{self.counter}"
        self.views[name] = ViewInfo(name, cols, definition)
        self.defn_index[definition] = name
        self.worklist.append(name)
        return name


def compile_query(
    query: Expr,
    name: str = "Q",
    updatable: frozenset[str] | None = None,
    use_domain: bool = True,
) -> TriggerProgram:
    """Compile a view-definition query to a maintenance program.

    ``updatable`` restricts which base relations receive triggers
    (static dimension tables need none); by default every referenced
    relation is updatable.  ``use_domain=False`` disables the
    domain-restricted assignment delta (the ablation of DESIGN.md §8);
    the recompute-twice rule is still correct, just more expensive.
    """
    query = simplify(query)
    top_cols = out_cols(query)
    ctx = _Context(prefix=name, use_domain=use_domain)
    top_view = ctx.materialize(query, top_cols)

    rels = _collect_relation_columns(query)
    if updatable is None:
        updatable = frozenset(rels)

    triggers = {
        r: Trigger(relation=r, rel_cols=rels[r]) for r in sorted(updatable)
    }

    processed: set[str] = set()
    while ctx.worklist:
        vname = ctx.worklist.pop(0)
        if vname in processed:
            continue
        processed.add(vname)
        _derive_view_triggers(ctx, vname, triggers, updatable)

    for trig in triggers.values():
        trig.statements = _order_statements(ctx, trig.statements)

    return TriggerProgram(
        query_name=name,
        top_view=top_view,
        views=ctx.views,
        triggers=triggers,
        base_relations=dict(rels),
    )


# ----------------------------------------------------------------------
# Per-view trigger derivation
# ----------------------------------------------------------------------


def _derive_view_triggers(
    ctx: _Context,
    vname: str,
    triggers: dict[str, Trigger],
    updatable: frozenset[str],
) -> None:
    info = ctx.views[vname]
    for r in sorted(base_relations(info.definition) & updatable):
        if _needs_reevaluation(info.definition, r):
            # Section 3.2.3: maintain by re-evaluating over materialized
            # pieces.  The pieces themselves are maintained
            # incrementally by their own statements.
            rewritten = _rewrite_relations(ctx, info.definition, info.cols)
            triggers[r].statements.append(
                Statement(vname, ":=", info.cols, rewritten)
            )
            continue
        d = derive_delta(info.definition, r, use_domain=ctx.use_domain)
        if is_statically_zero(d):
            continue
        expr = _compile_delta(ctx, d, info.cols)
        triggers[r].statements.append(
            Statement(vname, "+=", info.cols, expr)
        )


def _needs_reevaluation(definition: Expr, r: str) -> bool:
    """True when some nested aggregate of ``definition`` changes under
    updates to ``r`` but its delta domain binds no correlated variable."""
    found = False

    def visit(e: Expr) -> None:
        nonlocal found
        if found:
            return
        if isinstance(e, (Assign, Exists)):
            child = e.child
            if is_expr(child) and has_relations(child):
                if r in base_relations(child):
                    d = derive_delta(child, r)
                    if not is_statically_zero(d):
                        dom = extract_domain(d)
                        if not domain_binds_correlated_var(dom, child):
                            found = True
                            return
                visit(child)
            return
        from repro.query.ast import children

        for c in children(e):
            visit(c)

    visit(definition)
    return found


# ----------------------------------------------------------------------
# Term compilation: materialize update-independent parts
# ----------------------------------------------------------------------


def _compile_delta(
    ctx: _Context, d: Expr, target_cols: tuple[str, ...]
) -> Expr:
    """Compile a simplified delta: materialize the update-independent
    parts of every term, looking through the top-level Sum wrapper
    introduced by the view definition's projection."""
    terms = d.parts if isinstance(d, Union) else (d,)
    compiled: list[Expr] = []
    for t in terms:
        if isinstance(t, Sum):
            inner = t.child
            factors = list(inner.parts) if isinstance(inner, Join) else [inner]
            new_factors = _compile_term(ctx, factors, t.group_by)
            body = (
                new_factors[0]
                if len(new_factors) == 1
                else Join(tuple(new_factors))
            )
            compiled.append(Sum(t.group_by, body))
        elif isinstance(t, Join):
            new_factors = _compile_term(ctx, list(t.parts), target_cols)
            compiled.append(
                new_factors[0]
                if len(new_factors) == 1
                else Join(tuple(new_factors))
            )
        else:
            new_factors = _compile_term(ctx, [t], target_cols)
            compiled.append(
                new_factors[0]
                if len(new_factors) == 1
                else Join(tuple(new_factors))
            )
    if len(compiled) == 1:
        return simplify(compiled[0], hoist=False)
    return simplify(Union(tuple(compiled)), hoist=False)


def _compile_term(
    ctx: _Context, factors: list[Expr], target_cols: tuple[str, ...]
) -> list[Expr]:
    """Materialize the update-independent parts of one delta term.

    Factors referencing only base relations are grouped into maximal
    join-connected components, each replaced by a view projected onto
    the columns the rest of the term (or the target schema) needs.
    Remaining factors keep their relative order — delta factors were
    already hoisted to the front by simplification — and nested
    aggregates have their interiors rewritten over views recursively.
    """
    is_ui = [
        has_relations(f)
        and not delta_relations(f)
        and isinstance(f, (Rel, Sum))
        and not _contains_nested(f)
        for f in factors
    ]
    components = _connected_components(
        [i for i, ui in enumerate(is_ui) if ui], factors
    )

    # Columns needed from each component: target schema plus whatever
    # any *other* factor produces or consumes.
    new_factors: list[Expr | None] = list(factors)
    for comp in components:
        comp_set = set(comp)
        needed: set[str] = set(target_cols)
        for j, f in enumerate(factors):
            if j in comp_set:
                continue
            needed |= set(out_cols(f)) | set(free_vars(f))
        comp_factors = [factors[i] for i in comp]
        comp_cols_ordered = _ordered_cols(comp_factors)
        keep = tuple(c for c in comp_cols_ordered if c in needed)
        defn = Sum(
            keep,
            comp_factors[0] if len(comp_factors) == 1 else Join(tuple(comp_factors)),
        )
        view_name = ctx.materialize(defn, keep)
        ref = Rel(view_name, keep)
        new_factors[comp[0]] = ref
        for i in comp[1:]:
            new_factors[i] = None

    out: list[Expr] = []
    for f in new_factors:
        if f is None:
            continue
        out.append(_rewrite_nested(ctx, f))
    return out


def _contains_nested(e: Expr) -> bool:
    """True when the expression contains a relational nested aggregate."""
    if isinstance(e, (Assign, Exists)):
        child = e.child
        if isinstance(e, Assign) and not is_expr(child):
            return False
        return has_relations(child)
    from repro.query.ast import children

    return any(_contains_nested(c) for c in children(e))


def _connected_components(
    indices: list[int], factors: list[Expr]
) -> list[list[int]]:
    """Group factor indices into components connected by shared columns
    (the join graph); the paper never materializes disconnected joins."""
    cols = {i: set(out_cols(factors[i])) for i in indices}
    components: list[list[int]] = []
    for i in indices:
        merged = [c for c in components if any(cols[i] & cols[j] for j in c)]
        rest = [c for c in components if c not in merged]
        new_comp = sorted({i, *(j for c in merged for j in c)})
        components = rest + [new_comp]
    return [sorted(c) for c in components]


def _ordered_cols(factors: list[Expr]) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for f in factors:
        for c in out_cols(f):
            seen.setdefault(c, None)
    return tuple(seen)


# ----------------------------------------------------------------------
# Rewriting nested aggregates and leftover base relations over views
# ----------------------------------------------------------------------


def _rewrite_nested(ctx: _Context, e: Expr) -> Expr:
    """Rewrite relational interiors of nested aggregates over views."""
    if isinstance(e, Assign) and is_expr(e.child) and has_relations(e.child):
        return Assign(e.var, _rewrite_relations(ctx, e.child, None))
    if isinstance(e, Exists) and has_relations(e.child):
        return Exists(_rewrite_relations(ctx, e.child, None))
    from repro.query.ast import children, rebuild

    kids = children(e)
    if not kids:
        return e
    return rebuild(e, tuple(_rewrite_nested(ctx, c) for c in kids))


def _rewrite_relations(
    ctx: _Context, e: Expr, target_cols: tuple[str, ...] | None
) -> Expr:
    """Replace base-relation components of ``e`` by materialized views.

    Used for nested-aggregate interiors and for whole-query
    re-evaluation statements.  Correlation variables (free vars of the
    expression) are preserved as needed columns.
    """
    e = simplify(e)
    if isinstance(e, Union):
        return Union(
            tuple(_rewrite_relations(ctx, p, target_cols) for p in e.parts)
        )
    if isinstance(e, Sum):
        inner = e.child
        factors = list(inner.parts) if isinstance(inner, Join) else [inner]
        needed_ctx = tuple(e.group_by) + tuple(sorted(free_vars(e)))
        new_factors = _compile_term(ctx, factors, needed_ctx)
        body = (
            new_factors[0]
            if len(new_factors) == 1
            else Join(tuple(new_factors))
        )
        return Sum(e.group_by, body)
    if isinstance(e, Exists):
        return Exists(_rewrite_relations(ctx, e.child, target_cols))
    if isinstance(e, Join):
        cols = target_cols if target_cols is not None else out_cols(e)
        new_factors = _compile_term(ctx, list(e.parts), tuple(cols))
        if len(new_factors) == 1:
            return new_factors[0]
        return Join(tuple(new_factors))
    if isinstance(e, Rel):
        name = ctx.materialize(Sum(e.cols, e), e.cols)
        return Rel(name, e.cols)
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _rewrite_relations(ctx, e.child, None))
    return e


# ----------------------------------------------------------------------
# Statement ordering (the DAG property of Section 2.3)
# ----------------------------------------------------------------------


def _order_statements(
    ctx: _Context, statements: list[Statement]
) -> list[Statement]:
    """Order: incremental (+=) statements by decreasing view complexity
    — an n-th order delta reads (n+1)-th order views *before* they are
    refreshed — then re-evaluation (:=) statements by increasing
    complexity, which read the already-refreshed state."""

    def degree(s: Statement) -> int:
        info = ctx.views.get(s.target)
        return info.degree if info is not None else 0

    incremental = [s for s in statements if s.op == "+="]
    reevaluated = [s for s in statements if s.op == ":="]
    incremental.sort(key=degree, reverse=True)
    reevaluated.sort(key=degree)
    return incremental + reevaluated


def _collect_relation_columns(e: Expr) -> dict[str, tuple[str, ...]]:
    out: dict[str, tuple[str, ...]] = {}
    def visit(x: Expr) -> None:
        if isinstance(x, Rel):
            out.setdefault(x.name, x.cols)
            return
        from repro.query.ast import children

        for c in children(x):
            visit(c)
    visit(e)
    return out
