"""The bounded ingest queue: admission control and the drain barrier.

One :class:`IngestQueue` sits between a producer (whoever calls the
async backend's ``on_batch``) and the single batcher thread.  Besides
FIFO buffering it is the rendezvous point for everything the two sides
must agree on:

* **admission** when the queue is full — ``block`` (wait up to
  ``enqueue_timeout_s``, then raise :class:`IngestOverflow`), ``shed``
  (drop the batch, observable in the metrics), or ``coalesce`` (merge
  the batch into the *tail* entry when it streams the same relation —
  GMR deltas are additive, so coalescing loses nothing, and merging
  only at the tail keeps delivery order equal to admission order —
  falling back to blocking otherwise);
* the **drain barrier** — ``accepted`` counts entries admitted,
  ``completed`` counts entries whose flush finished downstream;
  :meth:`drain` waits for the two to meet, which is what makes
  ``snapshot()`` on the async backend a consistent read;
* **failure propagation** — when the batcher poisons the queue with the
  inner backend's exception, every producer call and every drain waiter
  raises :class:`~repro.exec.BackendError` instead of hanging.

All state is guarded by one condition variable; entries are immutable
once popped (coalescing touches only entries still queued, under the
same lock the batcher pops with).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.exec.backend import BackendError
from repro.metrics import IngestMetrics
from repro.ring import GMR

__all__ = ["ADMISSION_POLICIES", "Entry", "IngestOverflow", "IngestQueue"]

#: admission behaviors when the bounded queue is full
ADMISSION_POLICIES = ("block", "shed", "coalesce")


class IngestOverflow(BackendError):
    """A blocking enqueue timed out on a full queue.

    Transient overload, not a backend failure: the wrapper is *not*
    poisoned, and the producer may retry (or switch to ``shed`` /
    ``coalesce`` admission).
    """


class Entry:
    """One queued update: a relation's delta plus arrival bookkeeping."""

    __slots__ = (
        "relation", "delta", "tuples", "enqueued_at", "batches", "seq",
        "seqs", "trace",
    )

    def __init__(
        self,
        relation: str,
        delta: GMR,
        tuples: int,
        now: float,
        seq: int | None = None,
        trace=None,
    ):
        self.relation = relation
        self.delta = delta
        self.tuples = tuples
        self.enqueued_at = now
        #: producer batches merged into this entry (1 + coalesced)
        self.batches = 1
        #: producer-assigned sequence number (the view service stamps
        #: its service-wide batch seq here *at enqueue time*, so a later
        #: coalesced flush can report exactly which batches it contains)
        self.seq = seq
        #: every seq merged into this entry, in admission order (the
        #: trace layer's seq-coverage record — ``seq`` alone only keeps
        #: the max)
        self.seqs = [] if seq is None else [seq]
        #: admission-time TraceContext; coalescing keeps the context of
        #: the highest seq so the flush span joins the newest trace
        self.trace = trace


class IngestQueue:
    def __init__(
        self,
        capacity: int = 64,
        admission: str = "block",
        enqueue_timeout_s: float = 30.0,
        metrics: IngestMetrics | None = None,
        name: str = "async",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; choose one of: "
                + ", ".join(ADMISSION_POLICIES)
            )
        self.capacity = capacity
        self.admission = admission
        self.enqueue_timeout_s = enqueue_timeout_s
        self.metrics = metrics if metrics is not None else IngestMetrics()
        self.name = name
        self._cond = threading.Condition()
        self._entries: deque[Entry] = deque()
        self._accepted = 0
        self._completed = 0
        self._closed = False
        self._failure: BaseException | None = None
        self._flush_requested = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(
        self,
        relation: str,
        delta: GMR,
        tuples: int,
        seq: int | None = None,
        trace=None,
    ) -> tuple[str, int]:
        """Admit one batch; returns ``(outcome, depth)`` where outcome
        is ``"queued"``, ``"coalesced"``, or ``"shed"``.

        ``seq`` is an optional producer-assigned sequence number carried
        on the entry (coalescing keeps the highest seq merged in).

        Raises :class:`IngestOverflow` when blocking admission times
        out, and :class:`~repro.exec.BackendError` when the queue is
        closed or poisoned.
        """
        deadline = time.monotonic() + self.enqueue_timeout_s
        with self._cond:
            while True:
                self._check_usable()
                if len(self._entries) < self.capacity:
                    self._entries.append(
                        Entry(relation, delta, tuples, time.monotonic(),
                              seq, trace)
                    )
                    self._accepted += 1
                    self._cond.notify_all()
                    return "queued", len(self._entries)
                if self.admission == "shed":
                    self.metrics.record_shed(tuples)
                    return "shed", len(self._entries)
                if self.admission == "coalesce":
                    entry = self._entries[-1] if self._entries else None
                    if entry is not None and entry.relation == relation:
                        entry.delta.add_inplace(delta)
                        entry.tuples += tuples
                        entry.batches += 1
                        if seq is not None:
                            entry.seqs.append(seq)
                            if entry.seq is None or seq > entry.seq:
                                entry.seq = seq
                                entry.trace = trace
                        self.metrics.record_coalesced(tuples)
                        return "coalesced", len(self._entries)
                    # Only the *tail* entry is a merge target: folding
                    # this batch into an earlier same-relation entry
                    # would deliver its (high) seq ahead of later-queued
                    # lower seqs, breaking the per-subscriber seq
                    # monotonicity the service guarantees.  A tail of a
                    # different relation blocks like "block".
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise IngestOverflow(
                        f"{self.name}: ingest queue full "
                        f"({self.capacity} entries) and admission "
                        f"{self.admission!r} waited longer than "
                        f"{self.enqueue_timeout_s}s"
                    )
                self._cond.wait(min(remaining, 0.05))

    # ------------------------------------------------------------------
    # Batcher side
    # ------------------------------------------------------------------
    def get(self, timeout_s: float) -> Entry | None:
        """Pop the oldest entry, waiting up to ``timeout_s``; ``None``
        on timeout, closure-with-empty-queue, or poisoning."""
        end = time.monotonic() + timeout_s
        with self._cond:
            while not self._entries:
                if self._closed or self._failure is not None:
                    return None
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            entry = self._entries.popleft()
            self._cond.notify_all()
            return entry

    def mark_completed(self, entries: int) -> None:
        """The batcher finished flushing ``entries`` popped entries."""
        with self._cond:
            self._completed += entries
            self._cond.notify_all()

    def poison(self, exc: BaseException) -> None:
        """Record a batcher/inner failure; wakes every waiter."""
        with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    def drain(self, timeout_s: float) -> None:
        """Block until every admitted entry has been flushed.

        Requests an immediate flush of any partial pending batch (so a
        delay policy doesn't hold the barrier for its full window) and
        raises :class:`~repro.exec.BackendError` on poisoning or when
        the batcher fails to catch up within ``timeout_s`` — the
        no-deadlock guarantee for ``snapshot()`` on a wedged batcher.
        """
        with self._cond:
            self._flush_requested = True
            self._cond.notify_all()
            done = self._cond.wait_for(
                lambda: self._failure is not None
                or self._completed >= self._accepted,
                timeout_s,
            )
            if self._failure is not None:
                raise BackendError(
                    f"{self.name}: inner backend failed: {self._failure}"
                ) from self._failure
            if not done:
                raise BackendError(
                    f"{self.name}: batcher did not drain within "
                    f"{timeout_s}s ({self._accepted - self._completed} "
                    "entries outstanding) — batcher wedged?"
                )
            # The barrier is satisfied: clear the flush request here so
            # a stale flag cannot force the *next* batch into a
            # premature size-1 flush (which would defeat the
            # delay/adaptive coalescing after every read).
            self._flush_requested = False

    def flush_requested(self) -> bool:
        with self._cond:
            return self._flush_requested

    def clear_flush_request(self) -> None:
        with self._cond:
            self._flush_requested = False

    def close(self) -> None:
        """Stop admitting; the batcher finishes what is queued."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def discard_pending(self) -> int:
        """Drop queued entries (unclean shutdown); returns the count."""
        with self._cond:
            dropped = len(self._entries)
            self._completed += dropped
            self._entries.clear()
            self._cond.notify_all()
            return dropped

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failure(self) -> BaseException | None:
        return self._failure

    def empty(self) -> bool:
        with self._cond:
            return not self._entries

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)

    def _check_usable(self) -> None:
        if self._failure is not None:
            raise BackendError(
                f"{self.name}: inner backend failed: {self._failure}"
            ) from self._failure
        if self._closed:
            raise BackendError(f"{self.name}: ingest queue is closed")
