"""The async ingestion wrapper backend (``async:<inner>``).

:class:`AsyncIngestBackend` decouples stream arrival from trigger
execution for *any* registered :class:`~repro.exec.ExecutionBackend`:
``on_batch`` admits the update into a bounded :class:`IngestQueue` and
returns (ingestion latency), while the :class:`Batcher` thread
coalesces queued updates per the batching policy and runs the inner
backend's triggers (maintenance latency).  The two latencies — the
quantity the paper's batch-size sweeps trade against each other — are
recorded separately in :class:`~repro.metrics.IngestMetrics`.

Read consistency: ``snapshot()`` and ``last_delta()`` first
:meth:`drain` (a barrier: every admitted update is flushed), so reads
observe exactly what was ingested — which is also what makes the
wrapper pass the same differential tests as its inner backend.  The
barrier is bounded by ``drain_timeout_s``; a wedged batcher surfaces as
:class:`~repro.exec.BackendError`, never a deadlock.

Failure contract: an exception from the inner backend poisons the
wrapper — every subsequent call raises ``BackendError`` carrying the
original failure (mirroring the multiproc coordinator's poisoning).
A full queue under ``block`` admission instead raises the *transient*
:class:`~repro.ingest.queue.IngestOverflow` and does not poison.
"""

from __future__ import annotations

import time
import warnings

from repro.eval import Database
from repro.exec.backend import BackendError, ExecutionBackend, backend_info
from repro.ingest.batcher import Batcher
from repro.ingest.policy import make_policy
from repro.ingest.queue import IngestQueue
from repro.metrics import IngestMetrics
from repro.ring import GMR

__all__ = ["ASYNC_OPTION_NAMES", "AsyncIngestBackend", "make_async_factory"]

#: factory options consumed by the wrapper; everything else is passed
#: through to the inner backend's factory
ASYNC_OPTION_NAMES = frozenset(
    {
        "policy",
        "max_batch",
        "max_delay_s",
        "target_latency_s",
        "min_batch",
        "queue_capacity",
        "admission",
        "enqueue_timeout_s",
        "drain_timeout_s",
        "metrics",
        "autostart",
    }
)


class AsyncIngestBackend(ExecutionBackend):
    """Bounded-queue + batcher-thread front for an inner backend."""

    def __init__(
        self,
        inner: ExecutionBackend,
        *,
        name: str | None = None,
        policy="fixed",
        max_batch: int | None = None,
        max_delay_s: float | None = None,
        target_latency_s: float | None = None,
        min_batch: int | None = None,
        queue_capacity: int = 64,
        admission: str = "block",
        enqueue_timeout_s: float = 30.0,
        drain_timeout_s: float = 60.0,
        metrics: IngestMetrics | None = None,
        autostart: bool = True,
    ):
        self.inner = inner
        self.name = name or f"async:{type(inner).__name__}"
        self.metrics = metrics if metrics is not None else IngestMetrics()
        self.policy = make_policy(
            policy,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            target_latency_s=target_latency_s,
            min_batch=min_batch,
        )
        self.queue = IngestQueue(
            capacity=queue_capacity,
            admission=admission,
            enqueue_timeout_s=enqueue_timeout_s,
            metrics=self.metrics,
            name=self.name,
        )
        self.drain_timeout_s = drain_timeout_s
        self._batcher = Batcher(
            self.queue, inner, self.policy, self.metrics, name=self.name
        )
        self._closed = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the batcher thread (idempotent)."""
        if self._batcher.ident is None:
            self._batcher.start()

    @property
    def on_flush(self):
        """Post-flush hook ``(relation, delta_source, seq, trace) ->
        None``; the view service installs its push-delta publisher
        here.  ``seq`` is the highest producer-assigned sequence number
        merged into the flush (``None`` when entries were never
        stamped); ``trace`` is the flush span's context."""
        return self._batcher.on_flush

    @on_flush.setter
    def on_flush(self, hook) -> None:
        self._batcher.on_flush = hook

    @property
    def tracer(self):
        """Span sink for flush/maintain stages (NULL_TRACER default)."""
        return self._batcher.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._batcher.tracer = tracer

    @property
    def trace_view(self):
        """View name stamped on this backend's flush/maintain spans."""
        return self._batcher.trace_view

    @trace_view.setter
    def trace_view(self, view) -> None:
        self._batcher.trace_view = view

    def close(self, drain: bool = True) -> None:
        """Shut the wrapper down.

        With ``drain`` (default) everything already admitted is flushed
        to the inner backend first — a clean shutdown loses nothing even
        with a non-empty queue; ``drain=False`` discards what is still
        queued.  The inner backend's own ``close`` (if any) runs once
        the batcher has exited.
        """
        if self._closed:
            return
        self._closed = True
        if not drain or self.queue.failure is not None:
            self._batcher.request_discard()
        self.queue.close()
        if self._batcher.ident is None:
            # Never started (autostart=False): flush inline by running
            # the loop body once on this thread.
            self._batcher.run()
        else:
            self._batcher.join(timeout=self.drain_timeout_s)
        if self._batcher.is_alive():
            # The batcher is wedged inside the inner backend: closing
            # the inner under its feet would corrupt it mid-flush, so
            # the daemon thread (and the inner backend) are abandoned —
            # loudly, since e.g. a multiproc inner leaks its worker
            # processes here.
            warnings.warn(
                f"{self.name}: batcher did not exit within "
                f"{self.drain_timeout_s}s; inner backend left unclosed",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        inner_close = getattr(self.inner, "close", None)
        if inner_close is not None:
            inner_close()

    def __enter__(self) -> "AsyncIngestBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ExecutionBackend surface
    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        """Populate the inner backend's state (serialized vs flushes)."""
        self._check_open()
        with self._batcher.inner_lock:
            self.inner.initialize(base)

    def on_batch(self, relation: str, batch: GMR, seq: int | None = None,
                 trace=None) -> None:
        """Admit one update batch; returns once admission decides.

        The batch is copied at the boundary (the batcher merges entries
        in place), so callers may keep mutating their GMR.  ``seq`` is
        an optional producer sequence number stamped on the queue entry
        at enqueue time; the flush hook reports the highest seq actually
        merged into each flush (the view service uses this to attribute
        coalesced ``ViewDelta`` events to the right batch).  ``trace``
        is the admission-time :class:`~repro.obs.TraceContext` the
        flush span will join.
        """
        self._check_open()
        tuples = sum(abs(m) for m in batch.data.values())
        start = time.monotonic()
        outcome, depth = self.queue.put(
            relation, GMR(dict(batch.data)), tuples, seq, trace
        )
        if outcome != "shed":
            self.metrics.record_enqueue(
                time.monotonic() - start, depth, tuples
            )

    def drain(self, timeout: float | None = None) -> None:
        """Barrier: block until every admitted update is flushed."""
        if self._batcher.ident is None and not self._closed:
            if not len(self.queue):
                # Never started and nothing admitted: there is no work
                # the barrier could wait on.  Starting the batcher here
                # would silently defeat ``autostart=False`` — the view
                # service drains once at creation time (the changefeed
                # baseline), which must not launch the thread the
                # caller asked to control manually.
                return
            self.start()
        self.queue.drain(
            self.drain_timeout_s if timeout is None else timeout
        )

    def snapshot(self) -> GMR:
        """Drain, then read the inner view — a consistent read covering
        everything admitted before the call."""
        self.drain()
        with self._batcher.inner_lock:
            return self.inner.snapshot()

    def peek_snapshot(self) -> GMR:
        """The last *flushed* state, read without the drain barrier.

        A bounded-staleness read: it reflects every flush the batcher
        has completed but none of the updates still queued, and it
        never blocks behind a busy (or wedged) batcher.  The inner
        lock still serializes the read against an in-progress flush,
        so the result is always some prefix-consistent state — exactly
        the ``snapshot?consistent=0`` contract the serving frontends
        expose for non-draining replica reads.
        """
        self._check_open()
        with self._batcher.inner_lock:
            return GMR(dict(self.inner.snapshot().data))

    def last_delta(self) -> GMR:
        """Drain, then read the inner changefeed (coalesced since the
        previous call, as the base contract specifies)."""
        self.drain()
        return self._batcher.delta_source()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"{self.name} is closed")

    def __repr__(self) -> str:
        return (
            f"AsyncIngestBackend({self.name!r}, policy={self.policy!r}, "
            f"queue={len(self.queue)}/{self.queue.capacity})"
        )


def make_async_factory(inner_name: str):
    """A backend factory wrapping registered backend ``inner_name``.

    Splits the shared option set: wrapper knobs (``policy``,
    ``max_batch``, ``max_delay_s``, ``queue_capacity``, ``admission``,
    ...) configure the ingestion layer, everything else (``counters``,
    ``use_compiled``, ``n_workers``, ...) reaches the inner factory
    unchanged.
    """

    from repro.exec.backend import reject_nested_async

    reject_nested_async(f"async:{inner_name}")

    def factory(spec, **options):
        async_options = {
            k: options.pop(k) for k in ASYNC_OPTION_NAMES & options.keys()
        }
        inner = backend_info(inner_name).factory(spec, **options)
        return AsyncIngestBackend(
            inner, name=f"async:{inner_name}", **async_options
        )

    return factory
