"""Batching policies: when the batcher flushes, and how much.

A policy answers two questions the batcher asks on every iteration —
how many tuples should accumulate before a flush (:meth:`target_size`)
and how long the oldest queued update may wait (:meth:`max_delay_s`) —
and receives feedback after every flush (:meth:`observe`).

* :class:`FixedSizePolicy` — the paper's static knob: flush at a fixed
  tuple count.  ``max_delay_s`` is ``None``, which the batcher reads as
  "flush whenever the queue goes empty": under backlog batches fill to
  the target, at low load every update flushes immediately (group-commit
  behavior, so a fixed-size policy never holds a tail batch hostage).
* :class:`MaxDelayPolicy` — flush when the oldest queued update has
  waited ``max_delay_s``, or earlier when ``max_batch`` accumulates:
  a hard per-update freshness bound.
* :class:`AdaptivePolicy` — closes the loop on the paper's throughput/
  latency tradeoff: grow the target batch multiplicatively while
  observed maintenance latency stays under ``target_latency_s``, halve
  it when a flush overshoots.  The sweep the fig7/fig12 benchmarks do
  statically, performed online.
"""

from __future__ import annotations

__all__ = [
    "AdaptivePolicy",
    "BatchPolicy",
    "FixedSizePolicy",
    "MaxDelayPolicy",
    "make_policy",
]


class BatchPolicy:
    """Base policy: flush at ``target_size`` tuples, never on delay."""

    name = "base"

    def target_size(self) -> int:
        """Flush once this many tuples have accumulated."""
        raise NotImplementedError

    def max_delay_s(self) -> float | None:
        """Upper bound on the oldest queued update's wait, or ``None``
        for "flush whenever the queue goes idle" (no timed holding)."""
        return None

    def observe(self, flush_tuples: int, maintenance_s: float) -> None:
        """Feedback after a flush: its size and maintenance latency."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(target={self.target_size()})"


class FixedSizePolicy(BatchPolicy):
    """Flush at a fixed tuple count (idle flush when the queue drains)."""

    name = "fixed"

    def __init__(self, max_batch: int = 1000):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch

    def target_size(self) -> int:
        return self.max_batch


class MaxDelayPolicy(BatchPolicy):
    """Flush when the oldest update waited ``max_delay_s`` (or at
    ``max_batch`` tuples, whichever comes first)."""

    name = "delay"

    def __init__(self, max_delay_s: float = 0.05, max_batch: int = 1_000_000):
        if max_delay_s <= 0:
            raise ValueError(f"max_delay_s must be > 0, got {max_delay_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._max_delay_s = max_delay_s
        self.max_batch = max_batch

    def target_size(self) -> int:
        return self.max_batch

    def max_delay_s(self) -> float:
        return self._max_delay_s


class AdaptivePolicy(BatchPolicy):
    """Closed-loop batch sizing from observed maintenance latency.

    Multiplicative increase while flushes finish under
    ``grow_below * target_latency_s``, halving when one exceeds
    ``shrink_above * target_latency_s``; the target stays within
    ``[min_batch, max_batch]``.  ``max_delay_s`` bounds staleness while
    the controller is still growing toward its operating point.
    """

    name = "adaptive"

    def __init__(
        self,
        target_latency_s: float = 0.005,
        min_batch: int | None = None,
        max_batch: int = 100_000,
        max_delay_s: float = 0.05,
        initial: int | None = None,
        grow_below: float = 0.8,
        shrink_above: float = 1.2,
    ):
        if target_latency_s <= 0:
            raise ValueError(
                f"target_latency_s must be > 0, got {target_latency_s}"
            )
        if min_batch is None:
            min_batch = min(16, max_batch)
        if not (1 <= min_batch <= max_batch):
            raise ValueError(
                f"need 1 <= min_batch <= max_batch, got "
                f"{min_batch}..{max_batch}"
            )
        self.target_latency_s = target_latency_s
        self.min_batch = min_batch
        self.max_batch = max_batch
        self._max_delay_s = max_delay_s
        self.grow_below = grow_below
        self.shrink_above = shrink_above
        start = initial if initial is not None else min(256, max_batch)
        self._target = max(min_batch, min(max_batch, start))
        #: (flush_tuples, maintenance_s, new_target) history for tests
        #: and diagnostics
        self.adjustments: list[tuple[int, float, int]] = []

    def target_size(self) -> int:
        return self._target

    def max_delay_s(self) -> float:
        return self._max_delay_s

    def observe(self, flush_tuples: int, maintenance_s: float) -> None:
        if maintenance_s > self.shrink_above * self.target_latency_s:
            self._target = max(self.min_batch, self._target // 2)
        elif (
            maintenance_s < self.grow_below * self.target_latency_s
            # Only grow on flushes that actually probed the current
            # target; a tiny idle-time flush says nothing about how a
            # full batch would behave.
            and flush_tuples * 2 >= self._target
        ):
            self._target = min(self.max_batch, self._target * 2)
        self.adjustments.append((flush_tuples, maintenance_s, self._target))


#: CLI/registry names of the built-in policies
POLICY_NAMES = ("fixed", "delay", "adaptive")


def make_policy(
    policy,
    *,
    max_batch: int | None = None,
    max_delay_s: float | None = None,
    target_latency_s: float | None = None,
    min_batch: int | None = None,
) -> BatchPolicy:
    """Coerce a policy name (or a ready instance) into a policy.

    Keyword knobs apply where the policy defines them; ``None`` keeps
    the policy default.
    """
    if isinstance(policy, BatchPolicy):
        return policy
    if policy == "fixed":
        return FixedSizePolicy(**_given(max_batch=max_batch))
    if policy in ("delay", "timeout"):
        return MaxDelayPolicy(
            **_given(max_delay_s=max_delay_s, max_batch=max_batch)
        )
    if policy == "adaptive":
        return AdaptivePolicy(
            **_given(
                target_latency_s=target_latency_s,
                min_batch=min_batch,
                max_batch=max_batch,
                max_delay_s=max_delay_s,
            )
        )
    raise ValueError(
        f"unknown batching policy {policy!r}; choose one of: "
        + ", ".join(POLICY_NAMES)
    )


def _given(**kwargs) -> dict:
    return {k: v for k, v in kwargs.items() if v is not None}
