"""Async ingestion: decoupling stream arrival from trigger execution.

The subsystem behind the ``async:<backend>`` names in the execution
registry.  A bounded :class:`IngestQueue` admits update batches (with
``block`` / ``shed`` / ``coalesce`` admission control when full), a
:class:`Batcher` thread coalesces them under a pluggable
:class:`~repro.ingest.policy.BatchPolicy` (fixed size, max delay, or
closed-loop adaptive sizing from observed maintenance latency), and an
:class:`AsyncIngestBackend` presents the whole thing as a regular
:class:`~repro.exec.ExecutionBackend` — so every engine, including the
process-parallel one, gains asynchronous ingestion without changing.

Ingestion latency (enqueue wait, queue residency) and maintenance
latency (inner ``on_batch`` per flush) are recorded separately in
:class:`~repro.metrics.IngestMetrics`; ``benchmarks/
test_async_ingestion.py`` sweeps the policies and emits
``BENCH_async.json``.  See ARCHITECTURE.md ("Async ingestion").
"""

from repro.ingest.backend import (
    ASYNC_OPTION_NAMES,
    AsyncIngestBackend,
    make_async_factory,
)
from repro.ingest.batcher import Batcher
from repro.ingest.policy import (
    AdaptivePolicy,
    BatchPolicy,
    FixedSizePolicy,
    MaxDelayPolicy,
    make_policy,
)
from repro.ingest.queue import (
    ADMISSION_POLICIES,
    IngestOverflow,
    IngestQueue,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ASYNC_OPTION_NAMES",
    "AdaptivePolicy",
    "AsyncIngestBackend",
    "BatchPolicy",
    "Batcher",
    "FixedSizePolicy",
    "IngestOverflow",
    "IngestQueue",
    "MaxDelayPolicy",
    "make_async_factory",
    "make_policy",
]
