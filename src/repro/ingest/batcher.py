"""The batcher thread: coalesce queued updates, flush to the inner
backend, close the loop with the policy.

One daemon thread per async backend.  The loop pops entries in FIFO
order and accumulates *consecutive same-relation* entries into one
pending batch — never reordering across relations, so delivery order is
the arrival order with adjacent same-relation runs merged (GMR deltas
are additive, so a merged run is equivalent to its parts).  A pending
batch flushes when

* it reaches the policy's :meth:`~repro.ingest.policy.BatchPolicy.target_size`;
* the next entry streams a different relation;
* the oldest merged entry has waited the policy's ``max_delay_s``
  (policies with one), or the queue goes idle (policies without one —
  fixed-size batching degrades to group commit at low load);
* a drain barrier requests it, or the queue is closed for shutdown.

Every flush runs the inner backend under ``inner_lock`` — the same lock
the wrapper's ``initialize``/``snapshot`` take — then reports size and
maintenance latency to the policy and metrics, fires the optional
``on_flush`` hook (the view service's push-delta path), and only then
marks the entries completed, so a drain that returns implies every
subscriber already saw the corresponding deltas.

An exception escaping the inner backend (or the hook) poisons the
queue: producers and drain waiters get a
:class:`~repro.exec.BackendError` instead of a hang, and the thread
exits.
"""

from __future__ import annotations

import threading
import time

from repro.ingest.policy import BatchPolicy
from repro.ingest.queue import Entry, IngestQueue
from repro.metrics import IngestMetrics
from repro.obs.trace import NULL_TRACER

__all__ = ["Batcher"]

#: how long the loop waits for new entries before re-checking deadlines
POLL_S = 0.02


class _Pending:
    """Consecutive same-relation entries merged into one flushable batch."""

    __slots__ = ("relation", "delta", "tuples", "entries", "oldest_at",
                 "seq", "seqs", "trace")

    def __init__(self, entry: Entry):
        self.relation = entry.relation
        self.delta = entry.delta
        self.tuples = entry.tuples
        self.entries = 1
        self.oldest_at = entry.enqueued_at
        #: highest producer-assigned seq merged into this batch — what a
        #: coalesced flush's changefeed event must be stamped with (the
        #: producer's *current* seq at flush time may belong to batches
        #: this flush does not include)
        self.seq = entry.seq
        #: every seq merged into this batch (trace seq-coverage record)
        self.seqs = list(entry.seqs)
        #: trace context of the highest-seq entry — the flush span joins
        #: that trace and lists all merged seqs in its attrs
        self.trace = entry.trace

    def merge(self, entry: Entry) -> None:
        self.delta.add_inplace(entry.delta)
        self.tuples += entry.tuples
        self.entries += 1
        self.seqs.extend(entry.seqs)
        if entry.seq is not None:
            if self.seq is None or entry.seq > self.seq:
                self.seq = entry.seq
                self.trace = entry.trace


class Batcher(threading.Thread):
    def __init__(
        self,
        queue: IngestQueue,
        inner,
        policy: BatchPolicy,
        metrics: IngestMetrics,
        name: str = "async",
    ):
        super().__init__(name=f"{name}-batcher", daemon=True)
        self.queue = queue
        self.inner = inner
        self.policy = policy
        self.metrics = metrics
        #: serializes inner-backend access between this thread and the
        #: wrapper's initialize/snapshot/last_delta
        self.inner_lock = threading.Lock()
        #: optional hook ``on_flush(relation, delta_source, seq, trace,
        #: seqs=...)`` fired after each flush; ``delta_source()`` returns
        #: the inner changefeed's ``last_delta()`` (computed lazily,
        #: under ``inner_lock``), ``seq`` is the highest
        #: producer-assigned sequence number actually merged into the
        #: flushed batch (``None`` when the producer never stamped one),
        #: ``trace`` is the flush span's context for downstream publish
        #: spans, and ``seqs`` lists *every* merged seq — the coverage
        #: record a durable service writes next to the coalesced delta
        #: so log replay knows which batches the record spans
        self.on_flush = None
        #: span sink for flush/maintain stages; the service installs its
        #: tracer when it hosts this backend as an async view
        self.tracer = NULL_TRACER
        #: view name stamped on this batcher's spans
        self.trace_view: str | None = None
        self._discard = threading.Event()

    # ------------------------------------------------------------------
    def request_discard(self) -> None:
        """Make the thread exit without flushing what is still queued."""
        self._discard.set()

    def delta_source(self):
        """Inner changefeed read, serialized against flushes."""
        with self.inner_lock:
            return self.inner.last_delta()

    # ------------------------------------------------------------------
    def run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:  # never die silently: poison instead
            self.queue.poison(exc)

    def _loop(self) -> None:
        pending: _Pending | None = None
        while True:
            if self._discard.is_set():
                self.queue.discard_pending()
                if pending is not None:
                    self.queue.mark_completed(pending.entries)
                return
            entry = self.queue.get(self._poll_timeout(pending))
            if entry is not None:
                if pending is None:
                    pending = _Pending(entry)
                elif entry.relation != pending.relation:
                    self._flush(pending)
                    pending = _Pending(entry)
                else:
                    pending.merge(entry)
                if pending.tuples >= self.policy.target_size():
                    self._flush(pending)
                    pending = None
                    continue
            if pending is not None and self._due(pending):
                self._flush(pending)
                pending = None
            if pending is None and self.queue.empty():
                if self.queue.flush_requested():
                    self.queue.clear_flush_request()
                if self.queue.closed or self.queue.failure is not None:
                    return

    def _poll_timeout(self, pending: _Pending | None) -> float:
        if pending is None:
            return POLL_S
        max_delay = self.policy.max_delay_s()
        if max_delay is None:
            return POLL_S
        remaining = pending.oldest_at + max_delay - time.monotonic()
        return max(0.0, min(POLL_S, remaining))

    def _due(self, pending: _Pending) -> bool:
        # A drain barrier (or shutdown) means "hold nothing back", not
        # "stop coalescing": keep merging while backlog remains, flush
        # the moment there is nothing left to merge.
        if self.queue.empty() and (
            self.queue.flush_requested() or self.queue.closed
        ):
            return True
        max_delay = self.policy.max_delay_s()
        if max_delay is None:
            # No timed holding: flush as soon as there is no backlog to
            # coalesce (group commit at low load).
            return self.queue.empty()
        return time.monotonic() >= pending.oldest_at + max_delay

    def _flush(self, pending: _Pending) -> None:
        flush_span = self.tracer.span(
            "flush", pending.trace,
            relation=pending.relation,
            seq=pending.seq,
            seqs=list(pending.seqs),
            entries=pending.entries,
            tuples=pending.tuples,
            view=self.trace_view,
        )
        start = time.perf_counter()
        with self.inner_lock:
            with self.tracer.span(
                "maintain", flush_span.ctx,
                relation=pending.relation, seq=pending.seq,
                view=self.trace_view,
            ):
                self.inner.on_batch(pending.relation, pending.delta)
        maintenance = time.perf_counter() - start
        self.metrics.record_flush(
            tuples=pending.tuples,
            entries=pending.entries,
            maintenance_s=maintenance,
            delay_s=time.monotonic() - pending.oldest_at,
        )
        self.policy.observe(pending.tuples, maintenance)
        hook = self.on_flush
        if hook is not None:
            hook(pending.relation, self.delta_source, pending.seq,
                 flush_span.ctx, seqs=list(pending.seqs))
        flush_span.finish()
        # Completion is published last: a drain that returns implies the
        # flush hook (subscriber deltas) already ran.
        self.queue.mark_completed(pending.entries)
