"""The database: named GMRs for base relations, views, and deltas.

Base relations and materialized views live in the same namespace —
recursive IVM deliberately blurs the distinction, since base tables are
just the lowest-order materialized views (Example 2.2).
Delta relations live in a separate namespace so an update batch for
relation ``R`` never shadows the materialized contents of ``R``.
"""

from __future__ import annotations

from typing import Iterable

from repro.ring import GMR


class Database:
    """A mutable collection of named GMRs plus pending update batches."""

    def __init__(self) -> None:
        self.views: dict[str, GMR] = {}
        self.deltas: dict[str, GMR] = {}

    # ------------------------------------------------------------------
    # Views / base relations
    # ------------------------------------------------------------------
    def set_view(self, name: str, contents: GMR) -> None:
        self.views[name] = contents

    def get_view(self, name: str) -> GMR:
        """Contents of a view; unknown names read as empty relations."""
        g = self.views.get(name)
        if g is None:
            g = GMR()
            self.views[name] = g
        return g

    def has_view(self, name: str) -> bool:
        return name in self.views

    def apply_update(self, name: str, update: GMR) -> None:
        """Merge an update batch into a view's contents (``+=``)."""
        self.get_view(name).add_inplace(update)

    # ------------------------------------------------------------------
    # Delta relations (pending update batches)
    # ------------------------------------------------------------------
    def set_delta(self, name: str, batch: GMR) -> None:
        self.deltas[name] = batch

    def get_delta(self, name: str) -> GMR:
        return self.deltas.get(name, GMR())

    def clear_deltas(self) -> None:
        self.deltas.clear()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        out = Database()
        out.views = {k: GMR(dict(v.data)) for k, v in self.views.items()}
        out.deltas = {k: GMR(dict(v.data)) for k, v in self.deltas.items()}
        return out

    def insert_rows(self, name: str, rows: Iterable[tuple]) -> None:
        """Insert plain tuples with multiplicity 1 into a view."""
        g = self.get_view(name)
        for row in rows:
            g.add_tuple(tuple(row), 1)

    def __repr__(self) -> str:
        views = {k: len(v) for k, v in self.views.items()}
        return f"Database(views={views}, deltas={list(self.deltas)})"
