"""Reference evaluation of algebra expressions.

This package implements the paper's model of computation (Section
3.2.1): expressions are operator trees evaluated left to right, bottom
up, with information about bound variables flowing rightward through
joins.  The evaluator is the semantic ground truth — every execution
engine (recursive IVM, classical IVM, re-evaluation, distributed) is
tested for equivalence against it.
"""

from repro.eval.db import Database
from repro.eval.evaluator import Evaluator, evaluate
from repro.eval.compiled import (
    CompiledEvaluator,
    CompiledExpr,
    EvalContext,
    PlanCache,
    compile_expr,
)

__all__ = [
    "Database",
    "Evaluator",
    "evaluate",
    "CompiledEvaluator",
    "CompiledExpr",
    "EvalContext",
    "PlanCache",
    "compile_expr",
]
