"""Left-to-right, information-flow evaluation of algebra expressions.

The evaluator returns, for an expression ``e`` and an environment of
bound columns, a :class:`~repro.ring.GMR` keyed over ``out_cols(e)``.
Joins bind variables left to right: relation operands whose columns are
already bound are sliced through a hash index built once per join
evaluation (the in-memory hash-join reference model of Section 3.2.1);
complex operands are memoized on the values of the bound variables they
actually depend on, so uncorrelated subqueries are evaluated once.
"""

from __future__ import annotations

from repro.query.ast import (
    Assign,
    Cmp,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Gather,
    Join,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    ValueF,
    eval_term,
    is_expr,
)
from repro.query.schema import free_vars, out_cols
from repro.eval.db import Database
from repro.ring import GMR, is_zero

_CMP_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Evaluator:
    """Evaluates expressions against a :class:`Database`.

    ``counters`` (optional, any object with the fields of
    :class:`repro.metrics.Counters`) accumulates tuple scans, index
    lookups, and emissions — the virtual-instruction trace used by the
    benchmark harness.
    """

    def __init__(self, db: Database, counters=None):
        self.db = db
        self.counters = counters
        #: per-statement cache shared across the polynomial terms of one
        #: top-level evaluation: slice indexes built over relational
        #: operands and memoized subexpression results.  This models
        #: the CSE the paper's code generator performs (Section 5.1) —
        #: a domain expression or an ad-hoc join index appearing in
        #: several delta terms is computed once per trigger statement.
        self._stmt_cache: dict | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, e: Expr, env: dict[str, object] | None = None) -> GMR:
        """Evaluate ``e`` to a GMR keyed over ``out_cols(e)``.

        ``env`` binds columns from the evaluation context; bound columns
        that appear in ``e``'s output act as equality filters, and bound
        columns referenced by interpreted terms supply their values.

        The top-level call owns a statement-scoped cache; the caller
        must not mutate any referenced view *during* the evaluation
        (engines mutate only after a statement's RHS is computed).
        """
        owns_cache = self._stmt_cache is None
        if owns_cache:
            self._stmt_cache = {}
        try:
            return self._eval(e, env or {})
        finally:
            if owns_cache:
                self._stmt_cache = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _eval(self, e: Expr, env: dict[str, object]) -> GMR:
        if isinstance(e, Rel):
            return self._eval_rel(self.db.get_view(e.name), e.cols, env)
        if isinstance(e, DeltaRel):
            return self._eval_rel(self.db.get_delta(e.name), e.cols, env)
        if isinstance(e, Join):
            return self._eval_join(e, env)
        if isinstance(e, Union):
            return self._eval_union(e, env)
        if isinstance(e, Sum):
            return self._eval_sum(e, env)
        if isinstance(e, Const):
            # Zero checks route through the ring's canonical predicate:
            # a float residue below the ring epsilon must read as the
            # empty relation here exactly as it does in GMR arithmetic.
            return GMR() if is_zero(e.value) else GMR.unsafe({(): e.value})
        if isinstance(e, ValueF):
            v = eval_term(e.term, env)
            return GMR() if is_zero(v) else GMR.unsafe({(): v})
        if isinstance(e, Cmp):
            a = eval_term(e.lhs, env)
            b = eval_term(e.rhs, env)
            return GMR.unsafe({(): 1}) if _CMP_OPS[e.op](a, b) else GMR()
        if isinstance(e, Assign):
            return self._eval_assign(e, env)
        if isinstance(e, Exists):
            return self._eval(e.child, env).exists()
        if isinstance(e, (Repart, Scatter, Gather)):
            # Location transformers only move data; semantically they
            # are the identity, which is what makes local/distributed
            # program equivalence directly testable.
            return self._eval(e.child, env)
        raise TypeError(f"cannot evaluate {e!r}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _eval_rel(
        self, contents: GMR, cols: tuple[str, ...], env: dict[str, object]
    ) -> GMR:
        if self.counters is not None:
            self.counters.tuples_scanned += len(contents)
        bound = [(i, env[c]) for i, c in enumerate(cols) if c in env]
        if not bound:
            return contents
        out: dict[tuple, float] = {}
        for t, m in contents.items():
            if all(t[i] == v for i, v in bound):
                out[t] = m
        return GMR.unsafe(out)

    def _eval_union(self, e: Union, env: dict[str, object]) -> GMR:
        cols = out_cols(e)
        acc = GMR()
        for p in e.parts:
            sub = self._eval(p, env)
            pcols = out_cols(p)
            if pcols == cols:
                acc.add_inplace(sub)
            else:
                # Same column set, different order: re-key to union order.
                positions = [pcols.index(c) for c in cols]
                for t, m in sub.items():
                    acc.add_tuple(tuple(t[i] for i in positions), m)
        return acc

    def _eval_sum(self, e: Sum, env: dict[str, object]) -> GMR:
        sub = self._eval(e.child, env)
        ccols = out_cols(e.child)
        missing = [c for c in e.group_by if c not in ccols]
        if missing:
            # Group-by columns not produced by the child must be bound
            # from the context (they become constants of every group).
            unbound = [c for c in missing if c not in env]
            if unbound:
                raise ValueError(
                    f"Sum group-by columns {unbound} neither produced by "
                    f"the child nor bound by the context in {e!r}"
                )
            positions = [
                ("child", ccols.index(c)) if c in ccols else ("env", c)
                for c in e.group_by
            ]
            out = GMR()
            for t, m in sub.items():
                key = tuple(
                    t[i] if kind == "child" else env[i]
                    for kind, i in positions
                )
                out.add_tuple(key, m)
            return out
        positions2 = [ccols.index(c) for c in e.group_by]
        return sub.project(positions2)

    def _eval_assign(self, e: Assign, env: dict[str, object]) -> GMR:
        if not is_expr(e.child):
            # Classical assignment over a value term: a singleton.
            v = eval_term(e.child, env)
            if e.var in env and env[e.var] != v:
                return GMR()
            return GMR.unsafe({(v,): 1})
        sub = self._eval(e.child, env)
        ccols = out_cols(e.child)
        cols = out_cols(e)  # ccols extended by e.var
        var_bound = e.var in env
        out: dict[tuple, float] = {}
        if not ccols:
            # Scalar context: emit the aggregate even when it is 0
            # (SQL COUNT semantics); see Assign docstring.
            v = sub.get((), 0)
            if not var_bound or env[e.var] == v:
                out[(v,)] = 1
            return GMR.unsafe(out)
        for t, m in sub.items():
            if var_bound and env[e.var] != m:
                continue
            out[t + (m,)] = 1
        # Column order: out_cols(e) puts child's columns first, then var;
        # that is exactly how tuples were just built.
        assert cols == ccols + (e.var,) or e.var in ccols
        return GMR.unsafe(out)

    def _eval_join(self, e: Join, env: dict[str, object]) -> GMR:
        cols = out_cols(e)
        parts = e.parts
        n = len(parts)

        # Precompute, per operand: its columns, which of them will be
        # bound when evaluation reaches it, and a slicing or memoization
        # strategy.
        bound_so_far = set(env)
        plans = []
        for p in parts:
            pcols = out_cols(p)
            bound_positions = [
                i for i, c in enumerate(pcols) if c in bound_so_far
            ]
            if isinstance(p, (Rel, DeltaRel)) and bound_positions:
                cache_key = ("slice", p, tuple(bound_positions))
                cache = self._stmt_cache
                index = cache.get(cache_key) if cache is not None else None
                if index is None:
                    contents = (
                        self.db.get_view(p.name)
                        if isinstance(p, Rel)
                        else self.db.get_delta(p.name)
                    )
                    if self.counters is not None:
                        self.counters.tuples_scanned += len(contents)
                    index = {}
                    for t, m in contents.items():
                        key = tuple(t[i] for i in bound_positions)
                        index.setdefault(key, []).append((t, m))
                    if cache is not None:
                        cache[cache_key] = index
                plans.append(("slice", p, pcols, bound_positions, index))
            else:
                deps = tuple(
                    sorted((free_vars(p) | set(pcols)) & bound_so_far)
                )
                memo = {}
                if self._stmt_cache is not None:
                    memo_key = ("eval", p, deps)
                    memo = self._stmt_cache.setdefault(memo_key, {})
                plans.append(("eval", p, pcols, deps, memo))
            bound_so_far |= set(pcols)

        out = GMR()
        out_add = out.add_tuple
        counters = self.counters

        def recurse(i: int, env2: dict[str, object], mult) -> None:
            if i == n:
                out_add(tuple(env2[c] for c in cols), mult)
                if counters is not None:
                    counters.tuples_emitted += 1
                return
            kind, p, pcols, aux, memo = plans[i]
            if kind == "slice":
                key = tuple(env2[pcols[j]] for j in aux)
                if counters is not None:
                    counters.index_lookups += 1
                for t, m in memo_slice(aux, memo, key):
                    env3 = dict(env2)
                    for c, v in zip(pcols, t):
                        env3[c] = v
                    recurse(i + 1, env3, mult * m)
                return
            # Memoized evaluation of a general operand.
            mkey = tuple(env2[c] for c in aux)
            cached = memo.get(mkey)
            if cached is None:
                sub_env = {c: env2[c] for c in aux}
                cached = list(self._eval(p, sub_env).items())
                memo[mkey] = cached
            for t, m in cached:
                env3 = dict(env2)
                ok = True
                for c, v in zip(pcols, t):
                    if c in env3 and env3[c] != v:
                        ok = False
                        break
                    env3[c] = v
                if ok:
                    recurse(i + 1, env3, mult * m)

        def memo_slice(positions, index, key):
            return index.get(key, ())

        recurse(0, dict(env), 1)
        return out


def evaluate(e: Expr, db: Database, env: dict[str, object] | None = None) -> GMR:
    """One-shot evaluation helper."""
    return Evaluator(db).evaluate(e, env)
