"""Compile-once lowering of algebra expressions to closure pipelines.

The reference :class:`~repro.eval.Evaluator` re-interprets the AST on
every evaluation: per-node ``isinstance`` dispatch, per-call schema
derivation (``out_cols`` / ``free_vars``), and per-call join planning.
That cost is paid once per statement per batch — exactly the hot loop.

This module performs all of that work once, at *lowering* time:

* every operator becomes one Python closure; the operator tree becomes
  a composed pipeline of closures with no residual dispatch;
* output schemas, projection positions, union re-keying maps, and
  comparison operators are resolved during lowering;
* join plans — which operands are sliced through a hash index, which
  are memoized sub-evaluations, and on which bound columns — are
  derived during lowering and hoisted out of the batch loop.  Only the
  *contents* of slice indexes are (re)built at run time, because view
  contents change between statements; index builds are shared across
  the polynomial terms of one statement through the statement cache.

Pipelines are database-independent: the database, counters, and the
statement-scoped cache travel in an :class:`EvalContext`, so one lowered
pipeline can be shared by every worker of a simulated cluster and
reused across batches.  Lowering is specialized on the set of columns
the context binds (``bound``); :class:`PlanCache` memoizes lowered
pipelines keyed on ``(expression, bound)`` — statement identity, since
expressions are immutable and structurally hashable.

Semantics are defined by the interpreted evaluator; the differential
tests in ``tests/test_engine_equivalence.py`` keep this path honest.
"""

from __future__ import annotations

from operator import itemgetter as _itemgetter
from typing import Callable

from repro.query.ast import (
    Assign,
    Cmp,
    Col,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Func,
    Gather,
    Join,
    Lit,
    Arith,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    ValueF,
    ValueTerm,
    is_expr,
    lookup_function,
)
from repro.query.schema import free_vars, out_cols
from repro.eval.db import Database
from repro.metrics import Counters
from repro.ring import GMR, is_zero

_CMP_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class EvalContext:
    """Mutable run-time state threaded through a lowered pipeline.

    ``cache`` is the statement-scoped cache (slice indexes, memoized
    subexpression results) — the same CSE the interpreted evaluator
    performs, shared across the polynomial terms of one statement.
    """

    __slots__ = ("db", "counters", "cache")

    def __init__(self, db: Database, counters: Counters | None = None):
        self.db = db
        self.counters = counters
        self.cache: dict | None = None


class CompiledExpr:
    """A lowered expression: an output schema plus a run closure.

    ``run(ctx, env)`` expects ``ctx.cache`` to be a dict (the statement
    scope); :meth:`evaluate` owns that scope for one-shot use.
    """

    __slots__ = ("cols", "run")

    def __init__(self, cols: tuple[str, ...], run: Callable):
        self.cols = cols
        self.run = run

    def evaluate(self, ctx: EvalContext, env: dict[str, object] | None = None) -> GMR:
        """Evaluate under a fresh statement scope (unless one is open)."""
        owns = ctx.cache is None
        if owns:
            ctx.cache = {}
        try:
            return self.run(ctx, env if env is not None else {})
        finally:
            if owns:
                ctx.cache = None


# ----------------------------------------------------------------------
# Scalar terms
# ----------------------------------------------------------------------


def compile_term(term: ValueTerm) -> Callable[[dict], object]:
    """Lower a value term to a closure over the environment."""
    if isinstance(term, Col):
        name = term.name

        return lambda env: env[name]
    if isinstance(term, Lit):
        value = term.value

        return lambda env: value
    if isinstance(term, Arith):
        lhs = compile_term(term.lhs)
        rhs = compile_term(term.rhs)
        op = term.op
        if op == "+":
            return lambda env: lhs(env) + rhs(env)
        if op == "-":
            return lambda env: lhs(env) - rhs(env)
        if op == "*":
            return lambda env: lhs(env) * rhs(env)
        if op == "/":
            return lambda env: lhs(env) / rhs(env)
        raise ValueError(f"unknown arithmetic op {op!r}")
    if isinstance(term, Func):
        # Resolved per call: the function registry may gain entries
        # between lowering and execution (tests register late).
        fname = term.name
        args = tuple(compile_term(a) for a in term.args)

        return lambda env: lookup_function(fname)(*(a(env) for a in args))
    raise TypeError(f"not a value term: {term!r}")


# ----------------------------------------------------------------------
# Relational operators
# ----------------------------------------------------------------------


def compile_expr(e: Expr, bound: frozenset[str] = frozenset()) -> CompiledExpr:
    """Lower ``e`` for evaluation under contexts binding ``bound``.

    The lowered pipeline must be run with an environment whose keys are
    exactly ``bound`` (the engines evaluate statements under the empty
    environment; join operands are lowered against the columns bound by
    their left siblings).
    """
    return _compile(e, frozenset(bound))


def _compile(e: Expr, bound: frozenset[str]) -> CompiledExpr:
    if isinstance(e, (Rel, DeltaRel)):
        return _compile_rel(e, bound)
    if isinstance(e, Join):
        return _compile_join(e, bound)
    if isinstance(e, Union):
        return _compile_union(e, bound)
    if isinstance(e, Sum):
        return _compile_sum(e, bound)
    if isinstance(e, Const):
        return _compile_const(e)
    if isinstance(e, ValueF):
        return _compile_valuef(e)
    if isinstance(e, Cmp):
        return _compile_cmp(e)
    if isinstance(e, Assign):
        return _compile_assign(e, bound)
    if isinstance(e, Exists):
        child = _compile(e.child, bound)
        child_run = child.run

        def run(ctx, env):
            return child_run(ctx, env).exists()

        return CompiledExpr(child.cols, run)
    if isinstance(e, (Repart, Scatter, Gather)):
        # Location transformers are the identity on contents; lowering
        # erases them entirely.
        return _compile(e.child, bound)
    raise TypeError(f"cannot lower {e!r}")


def _compile_rel(e: Rel | DeltaRel, bound: frozenset[str]) -> CompiledExpr:
    name = e.name
    cols = e.cols
    if isinstance(e, DeltaRel):
        def fetch(ctx):
            return ctx.db.get_delta(name)
    else:
        def fetch(ctx):
            return ctx.db.get_view(name)

    bound_at = tuple((i, c) for i, c in enumerate(cols) if c in bound)
    if not bound_at:
        def run(ctx, env):
            contents = fetch(ctx)
            if ctx.counters is not None:
                ctx.counters.tuples_scanned += len(contents)
            return contents

        return CompiledExpr(cols, run)

    def run(ctx, env):
        contents = fetch(ctx)
        if ctx.counters is not None:
            ctx.counters.tuples_scanned += len(contents)
        key = tuple((i, env[c]) for i, c in bound_at)
        out = {}
        for t, m in contents.items():
            if all(t[i] == v for i, v in key):
                out[t] = m
        return GMR.unsafe(out)

    return CompiledExpr(cols, run)


def _compile_const(e: Const) -> CompiledExpr:
    if is_zero(e.value):
        def run(ctx, env):
            return GMR()
    else:
        value = e.value

        def run(ctx, env):
            return GMR.unsafe({(): value})

    return CompiledExpr((), run)


def _compile_valuef(e: ValueF) -> CompiledExpr:
    term = compile_term(e.term)

    def run(ctx, env):
        v = term(env)
        return GMR() if is_zero(v) else GMR.unsafe({(): v})

    return CompiledExpr((), run)


def _compile_cmp(e: Cmp) -> CompiledExpr:
    op = _CMP_OPS[e.op]
    lhs = compile_term(e.lhs)
    rhs = compile_term(e.rhs)

    def run(ctx, env):
        return GMR.unsafe({(): 1}) if op(lhs(env), rhs(env)) else GMR()

    return CompiledExpr((), run)


def _compile_union(e: Union, bound: frozenset[str]) -> CompiledExpr:
    cols = out_cols(e)
    parts = []
    for p in e.parts:
        sub = _compile(p, bound)
        if sub.cols == cols:
            parts.append((sub.run, None))
        else:
            # Same column set, different order: re-key to union order.
            positions = tuple(sub.cols.index(c) for c in cols)
            parts.append((sub.run, positions))

    def run(ctx, env):
        acc = GMR()
        for sub_run, positions in parts:
            sub = sub_run(ctx, env)
            if positions is None:
                acc.add_inplace(sub)
            else:
                add = acc.add_tuple
                for t, m in sub.items():
                    add(tuple(t[i] for i in positions), m)
        return acc

    return CompiledExpr(cols, run)


def _compile_sum(e: Sum, bound: frozenset[str]) -> CompiledExpr:
    child = _compile(e.child, bound)
    child_run = child.run
    ccols = child.cols
    group_by = e.group_by
    missing = [c for c in group_by if c not in ccols]
    if missing:
        unbound = [c for c in missing if c not in bound]
        if unbound:
            # The interpreted evaluator raises when evaluation reaches
            # the node; defer the error to run time the same way.
            node = e

            def run(ctx, env):
                raise ValueError(
                    f"Sum group-by columns {unbound} neither produced by "
                    f"the child nor bound by the context in {node!r}"
                )

            return CompiledExpr(group_by, run)
        positions = tuple(
            ("child", ccols.index(c)) if c in ccols else ("env", c)
            for c in group_by
        )

        def run(ctx, env):
            sub = child_run(ctx, env)
            out = GMR()
            add = out.add_tuple
            for t, m in sub.items():
                add(
                    tuple(
                        t[i] if kind == "child" else env[i]
                        for kind, i in positions
                    ),
                    m,
                )
            return out

        return CompiledExpr(group_by, run)

    positions2 = tuple(ccols.index(c) for c in group_by)

    def run(ctx, env):
        return child_run(ctx, env).project(positions2)

    return CompiledExpr(group_by, run)


def _compile_assign(e: Assign, bound: frozenset[str]) -> CompiledExpr:
    var = e.var
    var_bound = var in bound
    if not is_expr(e.child):
        term = compile_term(e.child)

        def run(ctx, env):
            v = term(env)
            if var_bound and env[var] != v:
                return GMR()
            return GMR.unsafe({(v,): 1})

        return CompiledExpr((var,), run)

    child = _compile(e.child, bound)
    child_run = child.run
    ccols = child.cols
    cols = out_cols(e)
    if not ccols:
        # Scalar context: emit the aggregate even when it is 0 (SQL
        # COUNT semantics); see the Assign docstring in the AST.
        def run(ctx, env):
            v = child_run(ctx, env).get((), 0)
            if var_bound and env[var] != v:
                return GMR.unsafe({})
            return GMR.unsafe({(v,): 1})

        return CompiledExpr(cols, run)

    def run(ctx, env):
        sub = child_run(ctx, env)
        out = {}
        for t, m in sub.items():
            if var_bound and env[var] != m:
                continue
            out[t + (m,)] = 1
        return GMR.unsafe(out)

    return CompiledExpr(cols, run)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


def _tuple_getter(cols: tuple[str, ...]):
    """A C-speed ``env -> tuple(env[c] for c in cols)``."""
    if not cols:
        return lambda env: ()
    if len(cols) == 1:
        c0 = cols[0]
        return lambda env: (env[c0],)
    return _itemgetter(*cols)


def _compile_join(e: Join, bound: frozenset[str]) -> CompiledExpr:
    cols = out_cols(e)

    # The operand chain is lowered back to front: each level closure
    # extends the environment and calls the next level; the innermost
    # level emits an output tuple.  This is the left-to-right
    # information-flow nested-loop of the reference evaluator with the
    # per-evaluation planning (bound positions, slice-vs-eval choice,
    # memo dependency sets) moved to lowering time.  Per-evaluation
    # artifacts (slice indexes, memo tables) are resolved once per join
    # evaluation into ``state`` slots, so the recursion's hot path does
    # a list index instead of re-hashing AST-keyed cache keys.
    emit_key = _tuple_getter(cols)

    def emit(ctx, env, mult, out_add, state):
        out_add(emit_key(env), mult)
        if ctx.counters is not None:
            ctx.counters.tuples_emitted += 1

    chain = emit
    bound_so_far = set(bound)
    levels = []
    for p in e.parts:
        pcols = out_cols(p)
        bound_positions = tuple(
            i for i, c in enumerate(pcols) if c in bound_so_far
        )
        if isinstance(p, (Rel, DeltaRel)) and bound_positions:
            levels.append(("slice", p, pcols, bound_positions))
        else:
            deps = tuple(sorted((free_vars(p) | set(pcols)) & bound_so_far))
            sub = _compile(p, frozenset(deps))
            levels.append(("eval", p, pcols, deps, sub))
        bound_so_far |= set(pcols)

    n_levels = len(levels)
    for slot, level in enumerate(reversed(levels)):
        if level[0] == "slice":
            _, p, pcols, bound_positions = level
            chain = _make_slice_level(
                p, pcols, bound_positions, chain, n_levels - 1 - slot
            )
        else:
            _, p, pcols, deps, sub = level
            chain = _make_eval_level(
                p, pcols, deps, sub, chain, n_levels - 1 - slot
            )

    first = chain

    def run(ctx, env):
        out = GMR()
        first(ctx, dict(env), 1, out.add_tuple, [None] * n_levels)
        return out

    return CompiledExpr(cols, run)


def _make_slice_level(node, pcols, bound_positions, nxt, slot):
    """A join level served by a hash index over the bound columns.

    The index plan (which relation, which positions) is fixed at
    lowering; the index contents are built lazily per statement and
    shared across the statement's terms through the context cache.
    """
    name = node.name
    is_delta = isinstance(node, DeltaRel)
    slice_key = _tuple_getter(tuple(pcols[i] for i in bound_positions))
    cache_key = ("slice", node, bound_positions)

    def level(ctx, env, mult, out_add, state):
        index = state[slot]
        if index is None:
            index = ctx.cache.get(cache_key)
            if index is None:
                contents = (
                    ctx.db.get_delta(name)
                    if is_delta
                    else ctx.db.get_view(name)
                )
                if ctx.counters is not None:
                    ctx.counters.tuples_scanned += len(contents)
                index = {}
                for t, m in contents.items():
                    k = tuple(t[i] for i in bound_positions)
                    index.setdefault(k, []).append((t, m))
                ctx.cache[cache_key] = index
            state[slot] = index
        if ctx.counters is not None:
            ctx.counters.index_lookups += 1
        for t, m in index.get(slice_key(env), ()):
            env2 = dict(env)
            for c, v in zip(pcols, t):
                env2[c] = v
            nxt(ctx, env2, mult * m, out_add, state)

    return level


def _make_eval_level(node, pcols, deps, sub: CompiledExpr, nxt, slot):
    """A join level evaluated as a subquery, memoized on the values of
    the bound columns it actually depends on — uncorrelated subqueries
    are evaluated once per statement."""
    cache_key = ("eval", node, deps)
    memo_key = _tuple_getter(deps)
    sub_run = sub.run

    def level(ctx, env, mult, out_add, state):
        memo = state[slot]
        if memo is None:
            memo = ctx.cache.setdefault(cache_key, {})
            state[slot] = memo
        mkey = memo_key(env)
        cached = memo.get(mkey)
        if cached is None:
            sub_env = {c: env[c] for c in deps}
            cached = list(sub_run(ctx, sub_env).items())
            memo[mkey] = cached
        for t, m in cached:
            env2 = dict(env)
            ok = True
            for c, v in zip(pcols, t):
                if c in env2 and env2[c] != v:
                    ok = False
                    break
                env2[c] = v
            if ok:
                nxt(ctx, env2, mult * m, out_add, state)

    return level


# ----------------------------------------------------------------------
# Plan cache and drop-in evaluator
# ----------------------------------------------------------------------


class PlanCache:
    """Memoized lowering, keyed on ``(expression, bound columns)``.

    Expressions are immutable and structurally hashable, so the key is
    exactly statement identity; engines share one cache per program so
    every statement is lowered once for the program's lifetime.
    """

    __slots__ = ("_plans", "hits", "misses")

    def __init__(self):
        self._plans: dict[tuple, CompiledExpr] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self, e: Expr, bound: frozenset[str] = frozenset()
    ) -> CompiledExpr:
        key = (e, bound)
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = compile_expr(e, bound)
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)


class CompiledEvaluator:
    """Drop-in replacement for :class:`~repro.eval.Evaluator` that runs
    lowered pipelines.  Repeated evaluations of the same expression hit
    the plan cache; pass a shared cache to amortize lowering across
    evaluators (e.g. one per cluster worker)."""

    def __init__(
        self,
        db: Database,
        counters: Counters | None = None,
        plans: PlanCache | None = None,
    ):
        self.db = db
        self.counters = counters
        self.plans = plans if plans is not None else PlanCache()
        self._ctx = EvalContext(db, counters)

    def evaluate(self, e: Expr, env: dict[str, object] | None = None) -> GMR:
        env = env if env is not None else {}
        plan = self.plans.lookup(e, frozenset(env))
        return plan.evaluate(self._ctx, env)
