"""The multi-view serving session.

A :class:`ViewService` is the system the paper describes from the
outside: SQL (or algebra) view definitions go in, and as base-relation
update batches stream through, every registered view stays fresh.  The
service owns

* one shared **catalog** (table name -> column names) against which SQL
  view definitions are parsed;
* one shared **base database** recording the accumulated contents of
  every streamed relation, so views created mid-stream initialize warm;
* any number of **views**, each an independently chosen
  :class:`~repro.exec.ExecutionBackend` maintaining one top-level
  query;
* per-view **subscriptions** that receive push-based
  :class:`ViewDelta` events computed from each backend's changefeed
  (:meth:`~repro.exec.ExecutionBackend.last_delta`).

Routing is dependency-driven: an incoming batch for relation ``R`` is
delivered once to every view whose spec streams ``R`` and skipped for
the rest, so N views over one stream cost only what their maintenance
actually requires.

Usage::

    svc = ViewService(catalog={"R": ("a", "b"), "S": ("b", "c")})
    svc.create_view("per_b", "SELECT R.b, COUNT(*) FROM R, S "
                             "WHERE R.b = S.b GROUP BY R.b")
    sub = svc.subscribe("per_b", print)
    svc.on_batch("R", GMR({(1, 10): 1}))
    svc.snapshot("per_b")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.compiler import canonicalize, fingerprint, is_shareable, shareable_subtrees
from repro.eval import Database
from repro.exec import (
    ExecutionBackend,
    available_backends,
    create_backend,
    is_registered,
    reject_nested_async,
)
from repro.ingest import AsyncIngestBackend
from repro.obs import Counter, MetricsRegistry, TraceContext, Tracer
from repro.query.ast import Rel, Sum
from repro.query.schema import base_relations, out_cols, substitute
from repro.ring import GMR
from repro.service.dag import NODE_PREFIX, SharedNode, SubplanDAG
from repro.workloads.spec import QuerySpec, as_query_spec

__all__ = [
    "ServiceError",
    "Subscription",
    "ViewDelta",
    "ViewHandle",
    "ViewService",
]

#: backend used for shared nodes materialized from scratch (cheapest
#: native-changefeed engine); promoted nodes keep the engine the
#: promoted view already ran
_NODE_BACKEND = "rivm-batch"


class ServiceError(ValueError):
    """Raised for invalid service operations (duplicate or unknown view
    names, SQL definitions without a catalog, unknown backends)."""


@dataclass(frozen=True)
class ViewDelta:
    """One push notification: the net change of a view after a batch.

    ``relation`` names the base relation whose batch caused the change
    (``None`` for synthetic events: the initial snapshot of
    ``subscribe(..., initial=True)``, or a coalesced flush triggered by
    another subscriber joining); ``seq`` is the service-wide batch
    sequence number.  Accumulating ``delta`` over a subscription's
    lifetime reproduces ``snapshot(view)`` exactly.
    """

    view: str
    relation: str | None
    seq: int
    delta: GMR
    #: trace context of the publish span that produced this event, so
    #: downstream delivery (the network stream pump) joins the batch's
    #: trace; ``None`` when tracing is disabled
    trace: TraceContext | None = None


class Subscription:
    """A cancellable push-based change subscription on one view."""

    def __init__(self, view: str, callback: Callable[[ViewDelta], None]):
        self.view = view
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        """Stop delivery; the subscription is removed lazily."""
        self.active = False

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"Subscription({self.view!r}, {state})"


@dataclass
class ViewHandle:
    """One registered view: its spec, backend, and delivery stats.

    The per-view stats live in registry :class:`~repro.obs.Counter`
    objects rather than plain ints: ``deltas_delivered`` is incremented
    from async batcher threads *without* the service lock, and a bare
    ``+= 1`` there loses increments under producer concurrency (the
    read-modify-write is not atomic).  The counters' own locks make the
    updates atomic, and the same objects are what ``/metrics`` exports.
    """

    name: str
    spec: QuerySpec
    backend_name: str
    backend: ExecutionBackend
    subscriptions: list[Subscription] = field(default_factory=list)
    #: counter behind :attr:`batches_applied` (service-installed
    #: registry child; standalone handles get a private one)
    batches_counter: Counter = field(default_factory=Counter, repr=False)
    #: counter behind :attr:`deltas_delivered`
    deltas_counter: Counter = field(default_factory=Counter, repr=False)
    #: the view's label scope in the service registry (closed on drop)
    metrics_scope: object = field(default=None, repr=False)
    #: shared per-view maintenance-latency histogram
    maintain_hist: object = field(default=None, repr=False)
    #: base relations routed directly into this view's backend; equals
    #: ``spec.updatable`` when the view is unshared
    route_rels: frozenset[str] = frozenset()
    #: internal shared nodes whose changefeeds feed this view
    consumes: tuple[str, ...] = ()
    #: the program the backend actually maintains — the spec factored
    #: against the service's subplan DAG (``spec`` itself when unshared)
    exec_spec: QuerySpec | None = field(default=None, repr=False)

    @property
    def batches_applied(self) -> int:
        """Batches routed to this view (relation matched
        ``spec.updatable``)."""
        return int(self.batches_counter.value)

    @property
    def deltas_delivered(self) -> int:
        """Non-empty deltas pushed to at least one subscriber."""
        return int(self.deltas_counter.value)

    @property
    def relations(self) -> frozenset[str]:
        """The relations this view streams (its routing key)."""
        return self.spec.updatable

    def __repr__(self) -> str:
        return (
            f"ViewHandle({self.name!r}, backend={self.backend_name!r}, "
            f"streams={sorted(self.relations)})"
        )


class ViewService:
    """A session hosting many maintained views over shared base streams.

    ``catalog`` seeds the table catalog for SQL view definitions (more
    tables can be added with :meth:`register_table`).  ``base`` seeds
    the shared base database — typically pre-loaded static dimension
    tables; the service copies it per view at creation, so load static
    tables *before* creating views.  ``track_base=False`` disables
    accumulating streamed batches into the shared base database (views
    created mid-stream then initialize cold); the harness uses it to
    keep measured windows free of bookkeeping.

    **Threading model.**  The session is safe for multiple producer
    threads: one re-entrant lock serializes ``on_batch``,
    ``create_view``/``drop_view``, ``subscribe`` and the catalog/base
    mutators, so the service-wide ``seq`` is assigned atomically with
    the routing it describes and every subscriber sees strictly
    increasing ``seq`` values — the invariant the network frontend
    (:mod:`repro.net`) relies on.  Async-backed views publish from
    their batcher thread *without* taking the service lock (their
    events carry the seq stamped at enqueue time), so a drain or close
    can never deadlock against a producer.
    """

    def __init__(
        self,
        catalog: dict[str, tuple[str, ...]] | None = None,
        base: Database | None = None,
        track_base: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        sharing: bool = True,
    ):
        self.catalog: dict[str, tuple[str, ...]] = {
            t: tuple(cols) for t, cols in (catalog or {}).items()
        }
        self.base = base if base is not None else Database()
        self.track_base = track_base
        self.sharing = sharing
        #: the shared-subplan DAG (``None`` with ``sharing=False`` — the
        #: differential baseline where every view runs its full program)
        self._dag: SubplanDAG | None = SubplanDAG() if sharing else None
        #: whole-query sharing key -> name of a live, sync, unshared
        #: view that can be *promoted* into a shared node on second use
        self._view_keys: dict[object, str] = {}
        #: sharing key -> (subtree spelling, updatable set) of every
        #: shareable subplan any view has mentioned; second mention
        #: materializes a fresh node from the shared base database
        self._subplan_keys: dict[object, tuple[object, frozenset[str]]] = {}
        self._views: dict[str, ViewHandle] = {}
        self._seq = 0
        # Re-entrant: a subscriber callback delivered under the lock may
        # legitimately call back into the service (create/drop/snapshot).
        self._lock = threading.RLock()
        #: unified metrics registry — per-service rather than global so
        #: in-process multi-shard deployments (and tests) stay isolated
        self.registry = registry if registry is not None else MetricsRegistry()
        #: span sink for the seq-correlated batch traces
        self.tracer = tracer if tracer is not None else Tracer()
        self._relation_counters: dict[str, Counter] = {}
        self.registry.gauge_fn(
            "repro_service_seq", lambda: self._seq,
            help="service-wide sequence number of the latest batch",
        )
        self.registry.gauge_fn(
            "repro_service_views", lambda: len(self._views),
            help="registered views",
        )
        self.registry.gauge_fn(
            "repro_service_shared_subviews",
            lambda: len(self._dag) if self._dag is not None else 0,
            help="internal shared sub-views materialized by the subplan DAG",
        )

    # ------------------------------------------------------------------
    # Catalog and base data
    # ------------------------------------------------------------------
    def register_table(self, name: str, columns) -> None:
        """Add (or redefine) a table in the SQL catalog."""
        with self._lock:
            self.catalog[name] = tuple(columns)

    def load(self, relation: str, rows) -> None:
        """Bulk-insert plain tuples into the shared base database.

        Rows loaded before a view is created are part of its warm
        initialization; rows loaded afterwards are routed to it only if
        delivered through :meth:`on_batch`, so treat ``load`` as static
        preloading.
        """
        with self._lock:
            self.base.insert_rows(relation, rows)

    # ------------------------------------------------------------------
    # View lifecycle
    # ------------------------------------------------------------------
    def create_view(
        self,
        name: str,
        source,
        backend: str = "rivm-batch",
        *,
        updatable: frozenset[str] | None = None,
        key_hints: dict[str, tuple[str, ...]] | None = None,
        **options,
    ) -> ViewHandle:
        """Register a view and start maintaining it.

        ``source`` is a SQL string (parsed against the service catalog),
        a query-algebra ``Expr``, or a pre-built ``QuerySpec`` — all
        three share one creation path (:func:`~repro.workloads.as_query_spec`).
        ``backend`` names any registered execution backend — including
        the ``async:<backend>`` ingestion wrappers, which give the view
        per-view admission control (``admission="block"|"shed"|"coalesce"``
        plus the batching-policy knobs, all via ``options``): a full
        queue then sheds or coalesces instead of stalling the shared
        stream, so one slow backend cannot hold every other view's
        freshness hostage.  ``options`` are forwarded to the factory
        (``counters=``, ``n_workers=``, ``use_compiled=``, ...).  The
        view initializes from the current shared base database, and its
        changefeed is baselined so subscription deltas describe only
        changes after creation.
        """
        # Nested wrappers fail here with the explanatory ValueError
        # (naming the inner backend) rather than the generic unknown-
        # backend ServiceError below.
        reject_nested_async(backend)
        with self._lock:
            if name in self._views:
                raise ServiceError(
                    f"view {name!r} already exists; drop_view() it first"
                )
            if name.startswith(NODE_PREFIX):
                raise ServiceError(
                    f"view names starting with {NODE_PREFIX!r} are "
                    "reserved for internal shared sub-views"
                )
            if not is_registered(backend):
                raise ServiceError(
                    f"unknown backend {backend!r}; registered backends: "
                    + ", ".join(available_backends())
                    + " (each also available as 'async:<backend>')"
                )
            try:
                spec = as_query_spec(
                    source,
                    name=name,
                    catalog=self.catalog or None,
                    updatable=updatable,
                    key_hints=key_hints,
                )
            except TypeError as exc:
                raise ServiceError(str(exc)) from exc
            if any(r.startswith(NODE_PREFIX) for r in base_relations(spec.query)):
                raise ServiceError(
                    f"relation names starting with {NODE_PREFIX!r} are "
                    "reserved for internal shared sub-views"
                )
            # Factor the program against the shared-subplan DAG: the
            # returned spec references internal node relations instead
            # of re-deriving subplans another view already maintains.
            exec_spec, consumes = (
                self._factor_spec(spec)
                if self._dag is not None
                else (spec, ())
            )
            try:
                engine = create_backend(backend, exec_spec, **options)
                init_db = self.base.copy()
                for node_name in consumes:
                    # Consumed nodes appear to the program as warm base
                    # relations holding the node's current contents.
                    node = self._dag.nodes[node_name]
                    init_db.apply_update(
                        node_name, GMR(dict(node.backend.snapshot().data))
                    )
                engine.initialize(init_db)
                # Baseline the changefeed: the warm-start contents are
                # delivered through subscribe(initial=True), not as the
                # first batch delta.
                engine.last_delta()
            except BaseException:
                # Release the consumer edges taken during factoring so
                # a failed creation never strands a fresh node.
                for node_name in consumes:
                    self._close_freed(self._dag.release(node_name))
                raise
            handle = ViewHandle(name, spec, backend, engine)
            handle.exec_spec = exec_spec
            handle.consumes = consumes
            handle.route_rels = frozenset(
                r for r in exec_spec.updatable if not r.startswith(NODE_PREFIX)
            )
            if self._dag is not None:
                self._index_keys(handle)
            self._register_view_metrics(handle)
            if isinstance(engine, AsyncIngestBackend):
                # Async views publish from the batcher thread, once per
                # flush (a coalesced flush is one event) — the stream
                # loop only enqueues.  Subscriber callbacks therefore
                # run on the view's batcher thread and must not issue
                # blocking reads of the same view.  The published seq is
                # the one stamped on each entry at enqueue time (the
                # highest actually merged into the flush) — reading the
                # service seq at flush time would misattribute coalesced
                # flushes to batches they do not include.  ``trace`` is
                # the flush span's context, parent of the publish span.
                engine.tracer = self.tracer
                engine.trace_view = name
                engine.on_flush = (
                    lambda relation, delta_source, seq, trace=None,
                            seqs=None, h=handle:
                        self._publish(h, relation, seq, delta_source,
                                      parent=trace, seqs=seqs)
                )
            self._views[name] = handle
            return handle

    # ------------------------------------------------------------------
    # Cross-view sharing (the shared-subplan DAG)
    # ------------------------------------------------------------------
    def _share_key(self, expr, updatable: frozenset[str]):
        """The sharing key of a shareable (sub)expression, or ``None``.

        The key pairs the canonical form with the set of relations the
        expression actually streams: two views whose identical subplan
        disagrees on which inputs are updatable must not share one
        maintenance program.
        """
        if not is_shareable(expr):
            return None
        streamed = frozenset(updatable) & base_relations(expr)
        if not streamed:
            return None  # fully static: would never receive a batch
        canon, _ = canonicalize(expr)
        return (canon, streamed)

    def _can_materialize(self) -> bool:
        # A fresh node initializes from the shared base database; with
        # base tracking off that database is stale after the first
        # batch, so mid-stream materialization would start wrong.
        return self.track_base or self._seq == 0

    def _node_ref(self, node: SharedNode, expr) -> Rel | None:
        """A ``Rel`` reference to ``node`` spelled in ``expr``'s own
        column names: position ``j`` names the consumer's column for the
        node's ``j``-th physical output column, translated through the
        two canonical mappings.  ``None`` when they do not line up (a
        defensive guard; equal canonical forms always align)."""
        _, mapping = canonicalize(expr)
        inverse = {c: o for o, c in mapping.items()}
        cols = []
        for rep_col in node.rep_cols:
            local = inverse.get(node.mapping.get(rep_col))
            if local is None:
                return None
            cols.append(local)
        return Rel(node.name, tuple(cols))

    def _alias_spec(self, view_name: str, expr, node: SharedNode):
        """The whole-query consumer program: a multiplicity-preserving
        re-key of the node's changefeed into the view's column names and
        output order — identical results at O(|delta|) per batch."""
        ref = self._node_ref(node, expr)
        if ref is None:
            return None
        return QuerySpec(
            name=view_name,
            query=Sum(out_cols(expr), ref),
            updatable=frozenset({node.name}),
        )

    def _materialize(self, key, expr, streamed: frozenset[str]) -> SharedNode:
        """Maintain subplan ``expr`` once, as a fresh internal node.

        The node's physical tuple order must be ``out_cols(expr)`` —
        that is what consumers' alias programs assume when they read
        the changefeed positionally.  A compiled engine only guarantees
        that for a ``Sum`` top (tuple order = ``group_by``); any other
        top is wrapped in the identity re-key ``Sum(out_cols(expr))``,
        which preserves multiplicities and pins the order.
        """
        name = self._dag.next_name()
        query = expr if isinstance(expr, Sum) else Sum(out_cols(expr), expr)
        node_spec = QuerySpec(
            name=name, query=query, updatable=frozenset(streamed)
        )
        engine = create_backend(_NODE_BACKEND, node_spec)
        engine.initialize(self.base.copy())
        engine.last_delta()
        _, mapping = canonicalize(expr)
        return self._dag.add(SharedNode(
            name=name,
            spec=node_spec,
            backend=engine,
            backend_name=_NODE_BACKEND,
            key=key,
            mapping=mapping,
            rep_cols=out_cols(expr),
            direct_rels=frozenset(streamed),
            fingerprint=fingerprint(expr),
        ))

    def _promote(self, handle: ViewHandle, key) -> SharedNode | None:
        """Turn a live, unshared, synchronous view into a shared node.

        The view's engine — whose state is already exact — becomes the
        internal node, and the view itself is rebuilt as the node's
        first changefeed consumer.  Not every view is promotable:
        async admission policy is per-view and a node must be
        synchronous under the service lock, and any backend that owns
        external resources (a ``close`` method: batcher threads,
        worker processes) must stay attached to its user view, whose
        creator may hold ``view(name).backend`` for lifecycle
        management.  Callers then fall back to materializing a fresh
        node.
        """
        if handle.consumes or hasattr(handle.backend, "close"):
            return None
        expr = handle.spec.query
        if not isinstance(expr, Sum):
            # Only a Sum top guarantees the engine's physical tuple
            # order is out_cols(expr), which consumers assume; other
            # tops fall back to a fresh (re-key-wrapped) node.
            return None
        # Flush changefeed owed to current subscribers, then baseline:
        # from here on this engine's changefeed feeds the DAG.
        self._publish(handle, None, self._seq)
        handle.backend.last_delta()
        name = self._dag.next_name()
        _, mapping = canonicalize(expr)
        node = self._dag.add(SharedNode(
            name=name,
            spec=QuerySpec(name=name, query=expr, updatable=frozenset(key[1])),
            backend=handle.backend,
            backend_name=handle.backend_name,
            key=key,
            mapping=mapping,
            rep_cols=out_cols(expr),
            direct_rels=frozenset(key[1]),
            fingerprint=fingerprint(expr),
        ))
        alias_spec = self._alias_spec(handle.name, expr, node)
        alias = create_backend(_NODE_BACKEND, alias_spec)
        init_db = Database()
        init_db.apply_update(name, GMR(dict(node.backend.snapshot().data)))
        alias.initialize(init_db)
        alias.last_delta()
        handle.backend = alias
        handle.exec_spec = alias_spec
        handle.route_rels = frozenset()
        handle.consumes = (name,)
        node.refcount += 1
        self._view_keys.pop(key, None)
        return node

    def _factor_spec(self, spec: QuerySpec) -> tuple[QuerySpec, tuple[str, ...]]:
        """Factor a new view's program against the DAG.

        Returns ``(exec_spec, consumed_node_names)`` with the consumer
        edges' refcounts already taken.  Falls back to ``(spec, ())`` —
        the full unshared program — whenever sharing is not clearly
        sound: no match, mappings that do not line up, or inputs whose
        upstream base relations overlap (each batch must reach a view
        through exactly one input, or per-view seq monotonicity and
        delta accounting would break).
        """
        from repro.query.ast import children as ast_children

        expr = spec.query
        # Whole-query match first — the strongest form: the view becomes
        # a pure changefeed consumer of one node.
        key = self._share_key(expr, spec.updatable)
        if key is not None:
            node = self._dag.by_key.get(key)
            if node is None:
                owner = self._view_keys.get(key)
                if owner is not None and owner in self._views:
                    node = self._promote(self._views[owner], key)
                if (
                    node is None
                    and key in self._subplan_keys
                    and self._can_materialize()
                ):
                    node = self._materialize(key, expr, key[1])
            if node is not None:
                alias_spec = self._alias_spec(spec.name, expr, node)
                if alias_spec is not None:
                    node.refcount += 1
                    return alias_spec, (node.name,)
        # Subtree factoring: replace shareable subplans some view has
        # already spelled with references to their nodes.  Selection
        # runs before any node is materialized, so bailing out is free.
        chosen: list[tuple[object, object, SharedNode | None]] = []
        claimed: set[str] = set()
        taken_keys: set = set()

        def _occurs_in(needle, hay) -> bool:
            if hay == needle:
                return True
            return any(_occurs_in(needle, c) for c in ast_children(hay))

        def consider(sub) -> bool:
            k = self._share_key(sub, spec.updatable)
            if k is None or k in taken_keys:
                return False
            node = self._dag.by_key.get(k)
            if node is None and (
                k not in self._subplan_keys or not self._can_materialize()
            ):
                return False
            if k[1] & claimed:
                return False  # would double-deliver a base relation
            # substitute() replaces by structural equality: a candidate
            # nested inside (or containing) an earlier pick would break
            # the earlier replacement when rebuilt.
            for _, prev_sub, _ in chosen:
                if _occurs_in(sub, prev_sub) or _occurs_in(prev_sub, sub):
                    return False
            chosen.append((k, sub, node))
            claimed.update(k[1])
            taken_keys.add(k)
            return True

        def walk(node_expr) -> None:
            for c in ast_children(node_expr):
                if consider(c):
                    continue
                walk(c)

        walk(expr)
        if not chosen:
            return spec, ()
        fresh: list[SharedNode] = []

        def bail() -> tuple[QuerySpec, tuple[str, ...]]:
            # Fresh nodes carry no consumer edges yet: discard directly.
            for node in fresh:
                self._dag.nodes.pop(node.name, None)
                self._dag.by_key.pop(node.key, None)
            return spec, ()

        replacements: dict = {}
        consumed: list[SharedNode] = []
        for k, sub, node in chosen:
            if node is None:
                node = self._materialize(k, sub, k[1])
                fresh.append(node)
            ref = self._node_ref(node, sub)
            if ref is None:
                continue
            replacements[sub] = ref
            consumed.append(node)
        if not replacements:
            return bail()
        for node in fresh:
            if node not in consumed:
                # Materialized but its reference failed to line up:
                # discard rather than strand an unconsumed node.
                self._dag.nodes.pop(node.name, None)
                self._dag.by_key.pop(node.key, None)
        factored = substitute(expr, replacements)
        direct = spec.updatable & frozenset(
            r for r in base_relations(factored)
            if not r.startswith(NODE_PREFIX)
        )
        upstream: set[str] = set()
        for node in consumed:
            upstream |= node.direct_rels
        if direct & upstream:
            return bail()
        if out_cols(factored) != out_cols(expr):
            if set(out_cols(factored)) != set(out_cols(expr)):
                return bail()
            # Restore the original output order with an identity re-key.
            factored = Sum(out_cols(expr), factored)
        for node in consumed:
            node.refcount += 1
        names = tuple(node.name for node in consumed)
        exec_spec = QuerySpec(
            name=spec.name,
            query=factored,
            updatable=frozenset(direct) | frozenset(names),
            key_hints={
                r: h for r, h in spec.key_hints.items() if r in direct
            },
            notes=spec.notes,
        )
        return exec_spec, names

    def _index_keys(self, handle: ViewHandle) -> None:
        """Record the spellings this view contributes to future sharing:
        every shareable subtree (first spelling wins), and — for fully
        unshared synchronous views — the whole query as a promotion
        candidate."""
        spec = handle.spec
        for sub in shareable_subtrees(spec.query):
            k = self._share_key(sub, spec.updatable)
            if k is not None and k not in self._subplan_keys:
                self._subplan_keys[k] = (sub, k[1])
        if not handle.consumes and not isinstance(
            handle.backend, AsyncIngestBackend
        ):
            k = self._share_key(spec.query, spec.updatable)
            if (
                k is not None
                and k not in self._view_keys
                and k not in self._dag.by_key
            ):
                self._view_keys[k] = handle.name

    @staticmethod
    def _close_freed(
        node: SharedNode | None,
        errors: list[tuple[str, BaseException]] | None = None,
    ) -> None:
        """Close the backend of a node freed by its last consumer."""
        if node is None:
            return
        close = getattr(node.backend, "close", None)
        if not callable(close):
            return
        try:
            close()
        except Exception as exc:
            if errors is not None:
                errors.append((node.name, exc))

    def dag_dump(self) -> dict:
        """A JSON-friendly picture of the shared-subplan DAG: internal
        nodes with their consumers, plus each view's inputs (direct
        base relations and consumed nodes)."""
        with self._lock:
            consumers: dict[str, list[str]] = {}
            views: dict[str, dict] = {}
            for handle in self._views.values():
                for node_name in handle.consumes:
                    consumers.setdefault(node_name, []).append(handle.name)
                views[handle.name] = {
                    "streams": sorted(handle.relations),
                    "direct": sorted(handle.route_rels),
                    "consumes": list(handle.consumes),
                    "backend": handle.backend_name,
                    "shared": bool(handle.consumes),
                }
            return {
                "sharing": self._dag is not None,
                "nodes": self._dag.dump(consumers) if self._dag else [],
                "views": views,
                "maintenance_programs": self.maintenance_programs(),
            }

    def maintenance_programs(self) -> int:
        """Full maintenance programs the service runs: internal shared
        nodes plus views still streaming base relations directly (pure
        changefeed consumers run only a trivial re-key program)."""
        with self._lock:
            full = sum(1 for h in self._views.values() if h.route_rels)
            return full + (len(self._dag) if self._dag is not None else 0)

    def _register_view_metrics(self, handle: ViewHandle) -> None:
        """Create the view's label scope and re-home its stats counters
        and the backend's island metrics into the service registry."""
        scope = self.registry.scope(view=handle.name)
        handle.metrics_scope = scope
        handle.batches_counter = scope.counter(
            "repro_view_batches_total",
            help="batches routed to this view",
        )
        handle.deltas_counter = scope.counter(
            "repro_view_deltas_total",
            help="non-empty deltas pushed to subscribers",
        )
        handle.maintain_hist = scope.histogram(
            "repro_view_maintain_seconds",
            help="inner-backend maintenance wall time per applied batch",
        )
        scope.gauge_fn(
            "repro_view_subscribers",
            lambda h=handle: sum(1 for s in h.subscriptions if s.active),
            help="active subscriptions",
        )
        scope.gauge_fn(
            "repro_view_fan_in",
            lambda h=handle: len(h.route_rels) + len(h.consumes),
            help="inputs feeding this view (direct base relations "
                 "plus consumed shared sub-views)",
        )
        engine = handle.backend
        if isinstance(engine, AsyncIngestBackend):
            scope.gauge_fn(
                "repro_ingest_queue_depth",
                lambda e=engine: len(e.queue),
                help="entries waiting in the ingest queue",
            )
            engine.metrics.bind(scope, maintain_hist=handle.maintain_hist)
            inner_counters = getattr(engine.inner, "counters", None)
        else:
            inner_counters = getattr(engine, "counters", None)
            # e.g. the multiproc backend's ParallelMetrics
            island = getattr(engine, "metrics", None)
            if island is not None and hasattr(island, "bind"):
                island.bind(scope)
        if inner_counters is not None and hasattr(inner_counters, "bind"):
            inner_counters.bind(scope)

    def drop_view(self, name: str) -> None:
        """Unregister a view.

        The view leaves the routing table first (no new batch can reach
        it), then an async-wrapped backend is *closed with a drain* —
        updates already admitted to its queue still flush and their
        :class:`ViewDelta` events still reach subscribers — and only
        then are the subscriptions cancelled.  Cancelling before the
        drain would flush the queued updates into the inner backend but
        silently never deliver their deltas.

        Teardown is exception-safe: even when the backend's ``close``
        raises, the subscriptions are cancelled, the metrics scope is
        removed, and the view's consumer edges on shared nodes are
        released (a node freed by its last consumer is torn down with
        it — dropping one consumer never kills a node others use).
        The first error is re-raised after cleanup completes.
        """
        with self._lock:
            handle = self._handle(name)
            del self._views[name]
            if self._view_keys:
                # Drop promotion candidates pointing at this view.
                self._view_keys = {
                    k: v for k, v in self._view_keys.items() if v != name
                }
        errors: list[tuple[str, BaseException]] = []
        try:
            # Close outside the service lock: the drain joins the
            # batcher thread, whose flush hook publishes to the (still
            # active) subscribers and must not wait on this caller.
            if isinstance(handle.backend, AsyncIngestBackend):
                handle.backend.close()
        except Exception as exc:
            errors.append((name, exc))
        for sub in handle.subscriptions:
            sub.cancel()
        if handle.metrics_scope is not None:
            # Remove the view's label series so create/drop churn does
            # not grow the registry without bound.
            handle.metrics_scope.close()
        if handle.consumes and self._dag is not None:
            freed: list[SharedNode] = []
            with self._lock:
                for node_name in handle.consumes:
                    node = self._dag.release(node_name)
                    if node is not None:
                        freed.append(node)
            for node in freed:
                self._close_freed(node, errors)
        if errors:
            raise errors[0][1]

    def views(self) -> tuple[str, ...]:
        """Names of the registered views, sorted."""
        with self._lock:
            return tuple(sorted(self._views))

    def view(self, name: str) -> ViewHandle:
        """The handle of a registered view."""
        with self._lock:
            return self._handle(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._views

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """The service-wide sequence number of the latest batch (0
        before any batch); every :class:`ViewDelta` carries the seq of
        the batch (or, for coalesced async flushes, the highest-seq
        batch) it describes."""
        with self._lock:
            return self._seq

    def on_batch(
        self,
        relation: str,
        batch: GMR,
        trace: TraceContext | None = None,
    ) -> tuple[str, ...]:
        """Route one update batch to every dependent view.

        The batch reaches each view whose spec streams ``relation``
        (others are skipped), subscribers of touched views receive the
        per-view :class:`ViewDelta`, and — unless ``track_base`` is off —
        the shared base database absorbs the batch so later
        ``create_view`` calls initialize warm.  Returns the names of the
        views that received the batch.

        Safe to call from several producer threads: the whole routing
        pass runs under the service lock, so ``seq`` assignment, view
        maintenance, and delta delivery stay atomic per batch and every
        subscriber observes strictly increasing ``seq``.  Note the
        flip side: a *blocking* admission on a full async queue (or a
        slow synchronous backend) holds the lock and stalls other
        producers for its duration — give contended async views
        ``shed``/``coalesce`` admission if that matters.

        If a view's backend raises, the batch is still routed to every
        other dependent view and the base update still applies —
        routing is not left half-done — and the first error is then
        re-raised (its type preserved, e.g. the transient
        :class:`~repro.ingest.IngestOverflow`).  The failed view has
        permanently missed this batch, and views that accepted it keep
        it: re-sending the same batch would double-apply it to them.

        ``trace`` joins an existing trace (the network frontend passes
        the parsed ``X-Repro-Trace`` context); ``None`` starts a fresh
        one.  Exactly one ``admission`` span is emitted per seq.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
            admission = self.tracer.span(
                "admission", trace, relation=relation, seq=seq,
            )
            ctr = self._relation_counters.get(relation)
            if ctr is None:
                ctr = self.registry.counter(
                    "repro_service_batches_total",
                    help="batches ingested, by base relation",
                    labels={"relation": relation},
                )
                self._relation_counters[relation] = ctr
            ctr.inc()
            touched: list[str] = []
            failures: list[tuple[str, BaseException]] = []
            # Topological stage 1: advance the shared sub-views this
            # relation streams into, collecting each node's changefeed
            # delta for its consumers below.  Nodes are synchronous and
            # run under the service lock, so the deltas are exact for
            # this seq.
            derived: dict[str, GMR] = {}
            if self._dag is not None and self._dag.nodes:
                with self.tracer.span(
                    "factor", admission.ctx, relation=relation, seq=seq,
                ):
                    for node in list(self._dag.nodes.values()):
                        if relation not in node.direct_rels:
                            continue
                        try:
                            node.backend.on_batch(relation, batch)
                        except Exception as exc:
                            # Consumers of this node permanently miss
                            # the batch, like a failing view does.
                            failures.append((node.name, exc))
                            continue
                        node.batches += 1
                        delta = node.backend.last_delta()
                        if not delta.is_zero():
                            derived[node.name] = delta
            # Topological stage 2: user views — fed either the base
            # batch directly or the delta of a node they consume (at
            # most one input per batch: factoring enforces disjoint
            # upstream base relations).  Snapshot the view list: a
            # subscriber callback may create or drop views mid-batch.
            for handle in list(self._views.values()):
                if relation in handle.route_rels:
                    rel_in, delta_in = relation, batch
                else:
                    rel_in = None
                    for node_name in handle.consumes:
                        if node_name in derived:
                            rel_in, delta_in = node_name, derived[node_name]
                            break
                    if rel_in is None:
                        continue
                try:
                    if isinstance(handle.backend, AsyncIngestBackend):
                        # Enqueue only, stamping the seq on the entry;
                        # the batcher publishes from its own thread
                        # after each flush (the on_flush hook installed
                        # at creation) with the highest seq actually
                        # merged — publishing here would drain and
                        # re-couple the stream to the slowest backend.
                        handle.backend.on_batch(
                            rel_in, delta_in, seq=seq, trace=admission.ctx
                        )
                    else:
                        with self.tracer.span(
                            "maintain", admission.ctx,
                            relation=rel_in, seq=seq, view=handle.name,
                        ):
                            start = time.perf_counter()
                            handle.backend.on_batch(rel_in, delta_in)
                            handle.maintain_hist.observe(
                                time.perf_counter() - start
                            )
                        self._publish(handle, rel_in, seq,
                                      parent=admission.ctx)
                except Exception as exc:
                    # Keep routing: one view's overflow/failure must not
                    # leave the batch half-delivered to the others.
                    failures.append((handle.name, exc))
                    continue
                handle.batches_counter.inc()
                touched.append(handle.name)
            if self.track_base:
                self.base.apply_update(relation, batch)
            admission.set(touched=len(touched))
            admission.finish()
            if failures:
                raise failures[0][1]
            return tuple(touched)

    def ingest(
        self,
        relation: str,
        batch: GMR,
        trace: TraceContext | None = None,
    ) -> tuple[int, tuple[str, ...]]:
        """:meth:`on_batch` plus the seq it assigned, read atomically.

        The network frontend echoes the seq to the producing client so
        it can correlate its batch with subscription deltas; reading
        ``service.seq`` after ``on_batch`` returns would race other
        producers and report someone else's batch.
        """
        with self._lock:
            touched = self.on_batch(relation, batch, trace=trace)
            return self._seq, touched

    def drain(self, name: str | None = None, timeout: float | None = None):
        """Barrier for async-ingesting views: block until everything
        admitted to their queues is flushed (and its deltas pushed).

        ``name`` drains one view, ``None`` all of them; synchronous
        views are already current and are skipped.  A wedged batcher
        raises :class:`~repro.exec.BackendError` after its drain
        timeout instead of hanging the caller.
        """
        with self._lock:
            handles = (
                [self._handle(name)] if name is not None
                else list(self._views.values())
            )
        # Wait outside the service lock: the batcher's flush hook
        # publishes without it, so producers stay unblocked while the
        # barrier waits.
        for handle in handles:
            if isinstance(handle.backend, AsyncIngestBackend):
                handle.backend.drain(timeout)
            # Flush changefeed coalesced during a no-subscriber window
            # (publishes skip delta computation with nobody listening):
            # a subscriber that joined after the window must receive the
            # catch-up *before* any post-drain mark, or accumulation
            # would diverge from the snapshot the barrier promises.
            self._publish(handle, None, self._seq)

    def _publish(
        self,
        handle: ViewHandle,
        relation: str | None,
        seq: int | None = None,
        delta_source: Callable[[], GMR] | None = None,
        parent: TraceContext | None = None,
        seqs: list[int] | None = None,
    ) -> None:
        """Compute and fan out one changefeed event, if anyone listens.

        When no subscription is active the (O(|view|)) delta is not
        computed; the backend's changefeed accumulates, so a later
        subscriber's first event covers everything since the last
        delivery and accumulation stays exact.  ``delta_source``
        overrides where the delta is read from (the async flush hook
        passes the inner changefeed; the default is the backend's own
        ``last_delta``).  ``seq`` stamps the event: producers pass the
        seq they assigned under the lock, the async flush hook passes
        the highest seq merged into the flush; ``None`` (unstamped
        entries from callers outside the service) falls back to the
        current service seq.  ``seqs`` is the flush hook's full
        seq-coverage list (every batch merged into a coalesced event) —
        recorded on the publish span here, and written into the delta
        log by the durable subclass.

        Deliberately takes **no** service lock: it runs both on
        producer threads (already holding the lock) and on async
        batcher threads (which must never need it, or ``drop_view``'s
        close-with-drain could deadlock against a blocked producer).
        """
        live = [s for s in handle.subscriptions if s.active]
        if len(live) != len(handle.subscriptions):
            # Prune cancelled subscriptions one by one instead of
            # replacing the list: this runs on the batcher thread for
            # async views, and a wholesale `[:] = live` would silently
            # drop a subscription the producer thread appends
            # concurrently.
            for sub in [s for s in handle.subscriptions if not s.active]:
                try:
                    handle.subscriptions.remove(sub)
                except ValueError:
                    pass
        if not live:
            return
        delta = (
            delta_source() if delta_source is not None
            else handle.backend.last_delta()
        )
        if delta.is_zero():
            return
        seq_val = self._seq if seq is None else seq
        # The publish span parents the downstream deliver spans (the
        # network pump reads the context off the event).
        span = self.tracer.span(
            "publish", parent,
            view=handle.name, relation=relation, seq=seq_val,
            subscribers=len(live),
            **({"seqs": list(seqs)} if seqs else {}),
        )
        event = ViewDelta(
            handle.name, relation, seq_val, delta, trace=span.ctx
        )
        # Counter, not `+= 1`: this path runs on batcher threads without
        # the service lock, racing producer-thread publishes.
        handle.deltas_counter.inc()
        for sub in live:
            if sub.active:
                sub.callback(event)
        span.finish()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self, name: str, consistent: bool = True) -> GMR:
        """Pull the current contents of a view (a defensive copy).

        ``consistent=False`` skips the drain barrier for async-backed
        views and serves the last *flushed* state instead — a
        bounded-staleness read that never waits on the batcher (the
        snapshot-isolation mode replica readers and the cluster
        router's round-robin reads use).  Synchronous views are always
        current, so the flag is a no-op for them.
        """
        with self._lock:
            backend = self._handle(name).backend
            if not isinstance(backend, AsyncIngestBackend):
                # Sync engines mutate their state inside on_batch, which
                # runs under this lock — read under it too.
                return GMR(dict(backend.snapshot().data))
        if not consistent:
            # No barrier: the wrapper's inner_lock alone serializes the
            # read against an in-progress flush.
            return backend.peek_snapshot()
        # Async reads drain first (waiting on the batcher): do that
        # outside the service lock so producers are not stalled behind
        # the barrier; the wrapper's inner_lock serializes the read.
        return GMR(dict(backend.snapshot().data))

    def subscribe(
        self,
        name: str,
        callback: Callable[[ViewDelta], None],
        *,
        initial: bool = False,
    ) -> Subscription:
        """Receive a :class:`ViewDelta` after every batch that changes
        the view.

        With ``initial=True`` the callback is first invoked with a
        synthetic event carrying the current snapshot (``relation=None``),
        so accumulation equals ``snapshot(name)`` even when the view was
        warm at subscribe time.

        Call this from the producer thread (the one driving
        ``on_batch``).  For async-backed views that discipline is what
        makes ``initial=True`` exact: the internal drain empties the
        view's queue and no new batch can arrive before the snapshot
        event is delivered, so nothing is both pushed and included in
        the snapshot.  Subscribing from a second thread while another
        streams has no such guarantee.
        """
        if initial:
            with self._lock:
                backend = self._handle(name).backend
            if isinstance(backend, AsyncIngestBackend):
                # Work the backlog down *outside* the service lock so a
                # long drain does not stall every producer on every
                # view; the last_delta() below re-drains under the lock
                # but only covers the short gap since this barrier.
                backend.drain()
        with self._lock:
            handle = self._handle(name)
            if initial:
                # Flush coalesced changes owed to existing subscribers,
                # then re-baseline the changefeed: the snapshot event
                # below covers everything up to now, so the next
                # per-batch delta must not include it again.
                self._publish(handle, None, self._seq)
                handle.backend.last_delta()
            sub = Subscription(handle.name, callback)
            handle.subscriptions.append(sub)
            if initial:
                snap = self.snapshot(name)
                if not snap.is_zero():
                    callback(ViewDelta(handle.name, None, self._seq, snap))
            return sub

    # ------------------------------------------------------------------
    def _handle(self, name: str) -> ViewHandle:
        try:
            return self._views[name]
        except KeyError:
            known = ", ".join(sorted(self._views)) or "<none>"
            raise ServiceError(
                f"unknown view {name!r}; registered views: {known}"
            ) from None

    def __repr__(self) -> str:
        views = {
            h.name: h.backend_name for h in self._views.values()
        }
        return f"ViewService(views={views}, seq={self._seq})"
