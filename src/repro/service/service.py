"""The multi-view serving session.

A :class:`ViewService` is the system the paper describes from the
outside: SQL (or algebra) view definitions go in, and as base-relation
update batches stream through, every registered view stays fresh.  The
service owns

* one shared **catalog** (table name -> column names) against which SQL
  view definitions are parsed;
* one shared **base database** recording the accumulated contents of
  every streamed relation, so views created mid-stream initialize warm;
* any number of **views**, each an independently chosen
  :class:`~repro.exec.ExecutionBackend` maintaining one top-level
  query;
* per-view **subscriptions** that receive push-based
  :class:`ViewDelta` events computed from each backend's changefeed
  (:meth:`~repro.exec.ExecutionBackend.last_delta`).

Routing is dependency-driven: an incoming batch for relation ``R`` is
delivered once to every view whose spec streams ``R`` and skipped for
the rest, so N views over one stream cost only what their maintenance
actually requires.

Usage::

    svc = ViewService(catalog={"R": ("a", "b"), "S": ("b", "c")})
    svc.create_view("per_b", "SELECT R.b, COUNT(*) FROM R, S "
                             "WHERE R.b = S.b GROUP BY R.b")
    sub = svc.subscribe("per_b", print)
    svc.on_batch("R", GMR({(1, 10): 1}))
    svc.snapshot("per_b")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.eval import Database
from repro.exec import (
    ExecutionBackend,
    available_backends,
    create_backend,
    is_registered,
    reject_nested_async,
)
from repro.ingest import AsyncIngestBackend
from repro.obs import Counter, MetricsRegistry, TraceContext, Tracer
from repro.ring import GMR
from repro.workloads.spec import QuerySpec, as_query_spec

__all__ = [
    "ServiceError",
    "Subscription",
    "ViewDelta",
    "ViewHandle",
    "ViewService",
]


class ServiceError(ValueError):
    """Raised for invalid service operations (duplicate or unknown view
    names, SQL definitions without a catalog, unknown backends)."""


@dataclass(frozen=True)
class ViewDelta:
    """One push notification: the net change of a view after a batch.

    ``relation`` names the base relation whose batch caused the change
    (``None`` for synthetic events: the initial snapshot of
    ``subscribe(..., initial=True)``, or a coalesced flush triggered by
    another subscriber joining); ``seq`` is the service-wide batch
    sequence number.  Accumulating ``delta`` over a subscription's
    lifetime reproduces ``snapshot(view)`` exactly.
    """

    view: str
    relation: str | None
    seq: int
    delta: GMR
    #: trace context of the publish span that produced this event, so
    #: downstream delivery (the network stream pump) joins the batch's
    #: trace; ``None`` when tracing is disabled
    trace: TraceContext | None = None


class Subscription:
    """A cancellable push-based change subscription on one view."""

    def __init__(self, view: str, callback: Callable[[ViewDelta], None]):
        self.view = view
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        """Stop delivery; the subscription is removed lazily."""
        self.active = False

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"Subscription({self.view!r}, {state})"


@dataclass
class ViewHandle:
    """One registered view: its spec, backend, and delivery stats.

    The per-view stats live in registry :class:`~repro.obs.Counter`
    objects rather than plain ints: ``deltas_delivered`` is incremented
    from async batcher threads *without* the service lock, and a bare
    ``+= 1`` there loses increments under producer concurrency (the
    read-modify-write is not atomic).  The counters' own locks make the
    updates atomic, and the same objects are what ``/metrics`` exports.
    """

    name: str
    spec: QuerySpec
    backend_name: str
    backend: ExecutionBackend
    subscriptions: list[Subscription] = field(default_factory=list)
    #: counter behind :attr:`batches_applied` (service-installed
    #: registry child; standalone handles get a private one)
    batches_counter: Counter = field(default_factory=Counter, repr=False)
    #: counter behind :attr:`deltas_delivered`
    deltas_counter: Counter = field(default_factory=Counter, repr=False)
    #: the view's label scope in the service registry (closed on drop)
    metrics_scope: object = field(default=None, repr=False)
    #: shared per-view maintenance-latency histogram
    maintain_hist: object = field(default=None, repr=False)

    @property
    def batches_applied(self) -> int:
        """Batches routed to this view (relation matched
        ``spec.updatable``)."""
        return int(self.batches_counter.value)

    @property
    def deltas_delivered(self) -> int:
        """Non-empty deltas pushed to at least one subscriber."""
        return int(self.deltas_counter.value)

    @property
    def relations(self) -> frozenset[str]:
        """The relations this view streams (its routing key)."""
        return self.spec.updatable

    def __repr__(self) -> str:
        return (
            f"ViewHandle({self.name!r}, backend={self.backend_name!r}, "
            f"streams={sorted(self.relations)})"
        )


class ViewService:
    """A session hosting many maintained views over shared base streams.

    ``catalog`` seeds the table catalog for SQL view definitions (more
    tables can be added with :meth:`register_table`).  ``base`` seeds
    the shared base database — typically pre-loaded static dimension
    tables; the service copies it per view at creation, so load static
    tables *before* creating views.  ``track_base=False`` disables
    accumulating streamed batches into the shared base database (views
    created mid-stream then initialize cold); the harness uses it to
    keep measured windows free of bookkeeping.

    **Threading model.**  The session is safe for multiple producer
    threads: one re-entrant lock serializes ``on_batch``,
    ``create_view``/``drop_view``, ``subscribe`` and the catalog/base
    mutators, so the service-wide ``seq`` is assigned atomically with
    the routing it describes and every subscriber sees strictly
    increasing ``seq`` values — the invariant the network frontend
    (:mod:`repro.net`) relies on.  Async-backed views publish from
    their batcher thread *without* taking the service lock (their
    events carry the seq stamped at enqueue time), so a drain or close
    can never deadlock against a producer.
    """

    def __init__(
        self,
        catalog: dict[str, tuple[str, ...]] | None = None,
        base: Database | None = None,
        track_base: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.catalog: dict[str, tuple[str, ...]] = {
            t: tuple(cols) for t, cols in (catalog or {}).items()
        }
        self.base = base if base is not None else Database()
        self.track_base = track_base
        self._views: dict[str, ViewHandle] = {}
        self._seq = 0
        # Re-entrant: a subscriber callback delivered under the lock may
        # legitimately call back into the service (create/drop/snapshot).
        self._lock = threading.RLock()
        #: unified metrics registry — per-service rather than global so
        #: in-process multi-shard deployments (and tests) stay isolated
        self.registry = registry if registry is not None else MetricsRegistry()
        #: span sink for the seq-correlated batch traces
        self.tracer = tracer if tracer is not None else Tracer()
        self._relation_counters: dict[str, Counter] = {}
        self.registry.gauge_fn(
            "repro_service_seq", lambda: self._seq,
            help="service-wide sequence number of the latest batch",
        )
        self.registry.gauge_fn(
            "repro_service_views", lambda: len(self._views),
            help="registered views",
        )

    # ------------------------------------------------------------------
    # Catalog and base data
    # ------------------------------------------------------------------
    def register_table(self, name: str, columns) -> None:
        """Add (or redefine) a table in the SQL catalog."""
        with self._lock:
            self.catalog[name] = tuple(columns)

    def load(self, relation: str, rows) -> None:
        """Bulk-insert plain tuples into the shared base database.

        Rows loaded before a view is created are part of its warm
        initialization; rows loaded afterwards are routed to it only if
        delivered through :meth:`on_batch`, so treat ``load`` as static
        preloading.
        """
        with self._lock:
            self.base.insert_rows(relation, rows)

    # ------------------------------------------------------------------
    # View lifecycle
    # ------------------------------------------------------------------
    def create_view(
        self,
        name: str,
        source,
        backend: str = "rivm-batch",
        *,
        updatable: frozenset[str] | None = None,
        key_hints: dict[str, tuple[str, ...]] | None = None,
        **options,
    ) -> ViewHandle:
        """Register a view and start maintaining it.

        ``source`` is a SQL string (parsed against the service catalog),
        a query-algebra ``Expr``, or a pre-built ``QuerySpec`` — all
        three share one creation path (:func:`~repro.workloads.as_query_spec`).
        ``backend`` names any registered execution backend — including
        the ``async:<backend>`` ingestion wrappers, which give the view
        per-view admission control (``admission="block"|"shed"|"coalesce"``
        plus the batching-policy knobs, all via ``options``): a full
        queue then sheds or coalesces instead of stalling the shared
        stream, so one slow backend cannot hold every other view's
        freshness hostage.  ``options`` are forwarded to the factory
        (``counters=``, ``n_workers=``, ``use_compiled=``, ...).  The
        view initializes from the current shared base database, and its
        changefeed is baselined so subscription deltas describe only
        changes after creation.
        """
        # Nested wrappers fail here with the explanatory ValueError
        # (naming the inner backend) rather than the generic unknown-
        # backend ServiceError below.
        reject_nested_async(backend)
        with self._lock:
            if name in self._views:
                raise ServiceError(
                    f"view {name!r} already exists; drop_view() it first"
                )
            if not is_registered(backend):
                raise ServiceError(
                    f"unknown backend {backend!r}; registered backends: "
                    + ", ".join(available_backends())
                    + " (each also available as 'async:<backend>')"
                )
            try:
                spec = as_query_spec(
                    source,
                    name=name,
                    catalog=self.catalog or None,
                    updatable=updatable,
                    key_hints=key_hints,
                )
            except TypeError as exc:
                raise ServiceError(str(exc)) from exc
            engine = create_backend(backend, spec, **options)
            engine.initialize(self.base.copy())
            # Baseline the changefeed: the warm-start contents are
            # delivered through subscribe(initial=True), not as the
            # first batch delta.
            engine.last_delta()
            handle = ViewHandle(name, spec, backend, engine)
            self._register_view_metrics(handle)
            if isinstance(engine, AsyncIngestBackend):
                # Async views publish from the batcher thread, once per
                # flush (a coalesced flush is one event) — the stream
                # loop only enqueues.  Subscriber callbacks therefore
                # run on the view's batcher thread and must not issue
                # blocking reads of the same view.  The published seq is
                # the one stamped on each entry at enqueue time (the
                # highest actually merged into the flush) — reading the
                # service seq at flush time would misattribute coalesced
                # flushes to batches they do not include.  ``trace`` is
                # the flush span's context, parent of the publish span.
                engine.tracer = self.tracer
                engine.trace_view = name
                engine.on_flush = (
                    lambda relation, delta_source, seq, trace=None,
                            seqs=None, h=handle:
                        self._publish(h, relation, seq, delta_source,
                                      parent=trace, seqs=seqs)
                )
            self._views[name] = handle
            return handle

    def _register_view_metrics(self, handle: ViewHandle) -> None:
        """Create the view's label scope and re-home its stats counters
        and the backend's island metrics into the service registry."""
        scope = self.registry.scope(view=handle.name)
        handle.metrics_scope = scope
        handle.batches_counter = scope.counter(
            "repro_view_batches_total",
            help="batches routed to this view",
        )
        handle.deltas_counter = scope.counter(
            "repro_view_deltas_total",
            help="non-empty deltas pushed to subscribers",
        )
        handle.maintain_hist = scope.histogram(
            "repro_view_maintain_seconds",
            help="inner-backend maintenance wall time per applied batch",
        )
        scope.gauge_fn(
            "repro_view_subscribers",
            lambda h=handle: sum(1 for s in h.subscriptions if s.active),
            help="active subscriptions",
        )
        engine = handle.backend
        if isinstance(engine, AsyncIngestBackend):
            scope.gauge_fn(
                "repro_ingest_queue_depth",
                lambda e=engine: len(e.queue),
                help="entries waiting in the ingest queue",
            )
            engine.metrics.bind(scope, maintain_hist=handle.maintain_hist)
            inner_counters = getattr(engine.inner, "counters", None)
        else:
            inner_counters = getattr(engine, "counters", None)
            # e.g. the multiproc backend's ParallelMetrics
            island = getattr(engine, "metrics", None)
            if island is not None and hasattr(island, "bind"):
                island.bind(scope)
        if inner_counters is not None and hasattr(inner_counters, "bind"):
            inner_counters.bind(scope)

    def drop_view(self, name: str) -> None:
        """Unregister a view.

        The view leaves the routing table first (no new batch can reach
        it), then an async-wrapped backend is *closed with a drain* —
        updates already admitted to its queue still flush and their
        :class:`ViewDelta` events still reach subscribers — and only
        then are the subscriptions cancelled.  Cancelling before the
        drain would flush the queued updates into the inner backend but
        silently never deliver their deltas.
        """
        with self._lock:
            handle = self._handle(name)
            del self._views[name]
        # Close outside the service lock: the drain joins the batcher
        # thread, whose flush hook publishes to the (still active)
        # subscribers and must not wait on this caller.
        if isinstance(handle.backend, AsyncIngestBackend):
            handle.backend.close()
        for sub in handle.subscriptions:
            sub.cancel()
        if handle.metrics_scope is not None:
            # Remove the view's label series so create/drop churn does
            # not grow the registry without bound.
            handle.metrics_scope.close()

    def views(self) -> tuple[str, ...]:
        """Names of the registered views, sorted."""
        with self._lock:
            return tuple(sorted(self._views))

    def view(self, name: str) -> ViewHandle:
        """The handle of a registered view."""
        with self._lock:
            return self._handle(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._views

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """The service-wide sequence number of the latest batch (0
        before any batch); every :class:`ViewDelta` carries the seq of
        the batch (or, for coalesced async flushes, the highest-seq
        batch) it describes."""
        with self._lock:
            return self._seq

    def on_batch(
        self,
        relation: str,
        batch: GMR,
        trace: TraceContext | None = None,
    ) -> tuple[str, ...]:
        """Route one update batch to every dependent view.

        The batch reaches each view whose spec streams ``relation``
        (others are skipped), subscribers of touched views receive the
        per-view :class:`ViewDelta`, and — unless ``track_base`` is off —
        the shared base database absorbs the batch so later
        ``create_view`` calls initialize warm.  Returns the names of the
        views that received the batch.

        Safe to call from several producer threads: the whole routing
        pass runs under the service lock, so ``seq`` assignment, view
        maintenance, and delta delivery stay atomic per batch and every
        subscriber observes strictly increasing ``seq``.  Note the
        flip side: a *blocking* admission on a full async queue (or a
        slow synchronous backend) holds the lock and stalls other
        producers for its duration — give contended async views
        ``shed``/``coalesce`` admission if that matters.

        If a view's backend raises, the batch is still routed to every
        other dependent view and the base update still applies —
        routing is not left half-done — and the first error is then
        re-raised (its type preserved, e.g. the transient
        :class:`~repro.ingest.IngestOverflow`).  The failed view has
        permanently missed this batch, and views that accepted it keep
        it: re-sending the same batch would double-apply it to them.

        ``trace`` joins an existing trace (the network frontend passes
        the parsed ``X-Repro-Trace`` context); ``None`` starts a fresh
        one.  Exactly one ``admission`` span is emitted per seq.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
            admission = self.tracer.span(
                "admission", trace, relation=relation, seq=seq,
            )
            ctr = self._relation_counters.get(relation)
            if ctr is None:
                ctr = self.registry.counter(
                    "repro_service_batches_total",
                    help="batches ingested, by base relation",
                    labels={"relation": relation},
                )
                self._relation_counters[relation] = ctr
            ctr.inc()
            touched: list[str] = []
            failures: list[tuple[str, BaseException]] = []
            # Snapshot the view list: a subscriber callback may react by
            # creating or dropping views mid-batch.
            for handle in list(self._views.values()):
                if relation not in handle.relations:
                    continue
                try:
                    if isinstance(handle.backend, AsyncIngestBackend):
                        # Enqueue only, stamping the seq on the entry;
                        # the batcher publishes from its own thread
                        # after each flush (the on_flush hook installed
                        # at creation) with the highest seq actually
                        # merged — publishing here would drain and
                        # re-couple the stream to the slowest backend.
                        handle.backend.on_batch(
                            relation, batch, seq=seq, trace=admission.ctx
                        )
                    else:
                        with self.tracer.span(
                            "maintain", admission.ctx,
                            relation=relation, seq=seq, view=handle.name,
                        ):
                            start = time.perf_counter()
                            handle.backend.on_batch(relation, batch)
                            handle.maintain_hist.observe(
                                time.perf_counter() - start
                            )
                        self._publish(handle, relation, seq,
                                      parent=admission.ctx)
                except Exception as exc:
                    # Keep routing: one view's overflow/failure must not
                    # leave the batch half-delivered to the others.
                    failures.append((handle.name, exc))
                    continue
                handle.batches_counter.inc()
                touched.append(handle.name)
            if self.track_base:
                self.base.apply_update(relation, batch)
            admission.set(touched=len(touched))
            admission.finish()
            if failures:
                raise failures[0][1]
            return tuple(touched)

    def ingest(
        self,
        relation: str,
        batch: GMR,
        trace: TraceContext | None = None,
    ) -> tuple[int, tuple[str, ...]]:
        """:meth:`on_batch` plus the seq it assigned, read atomically.

        The network frontend echoes the seq to the producing client so
        it can correlate its batch with subscription deltas; reading
        ``service.seq`` after ``on_batch`` returns would race other
        producers and report someone else's batch.
        """
        with self._lock:
            touched = self.on_batch(relation, batch, trace=trace)
            return self._seq, touched

    def drain(self, name: str | None = None, timeout: float | None = None):
        """Barrier for async-ingesting views: block until everything
        admitted to their queues is flushed (and its deltas pushed).

        ``name`` drains one view, ``None`` all of them; synchronous
        views are already current and are skipped.  A wedged batcher
        raises :class:`~repro.exec.BackendError` after its drain
        timeout instead of hanging the caller.
        """
        with self._lock:
            handles = (
                [self._handle(name)] if name is not None
                else list(self._views.values())
            )
        # Wait outside the service lock: the batcher's flush hook
        # publishes without it, so producers stay unblocked while the
        # barrier waits.
        for handle in handles:
            if isinstance(handle.backend, AsyncIngestBackend):
                handle.backend.drain(timeout)
            # Flush changefeed coalesced during a no-subscriber window
            # (publishes skip delta computation with nobody listening):
            # a subscriber that joined after the window must receive the
            # catch-up *before* any post-drain mark, or accumulation
            # would diverge from the snapshot the barrier promises.
            self._publish(handle, None, self._seq)

    def _publish(
        self,
        handle: ViewHandle,
        relation: str | None,
        seq: int | None = None,
        delta_source: Callable[[], GMR] | None = None,
        parent: TraceContext | None = None,
        seqs: list[int] | None = None,
    ) -> None:
        """Compute and fan out one changefeed event, if anyone listens.

        When no subscription is active the (O(|view|)) delta is not
        computed; the backend's changefeed accumulates, so a later
        subscriber's first event covers everything since the last
        delivery and accumulation stays exact.  ``delta_source``
        overrides where the delta is read from (the async flush hook
        passes the inner changefeed; the default is the backend's own
        ``last_delta``).  ``seq`` stamps the event: producers pass the
        seq they assigned under the lock, the async flush hook passes
        the highest seq merged into the flush; ``None`` (unstamped
        entries from callers outside the service) falls back to the
        current service seq.  ``seqs`` is the flush hook's full
        seq-coverage list (every batch merged into a coalesced event) —
        recorded on the publish span here, and written into the delta
        log by the durable subclass.

        Deliberately takes **no** service lock: it runs both on
        producer threads (already holding the lock) and on async
        batcher threads (which must never need it, or ``drop_view``'s
        close-with-drain could deadlock against a blocked producer).
        """
        live = [s for s in handle.subscriptions if s.active]
        if len(live) != len(handle.subscriptions):
            # Prune cancelled subscriptions one by one instead of
            # replacing the list: this runs on the batcher thread for
            # async views, and a wholesale `[:] = live` would silently
            # drop a subscription the producer thread appends
            # concurrently.
            for sub in [s for s in handle.subscriptions if not s.active]:
                try:
                    handle.subscriptions.remove(sub)
                except ValueError:
                    pass
        if not live:
            return
        delta = (
            delta_source() if delta_source is not None
            else handle.backend.last_delta()
        )
        if delta.is_zero():
            return
        seq_val = self._seq if seq is None else seq
        # The publish span parents the downstream deliver spans (the
        # network pump reads the context off the event).
        span = self.tracer.span(
            "publish", parent,
            view=handle.name, relation=relation, seq=seq_val,
            subscribers=len(live),
            **({"seqs": list(seqs)} if seqs else {}),
        )
        event = ViewDelta(
            handle.name, relation, seq_val, delta, trace=span.ctx
        )
        # Counter, not `+= 1`: this path runs on batcher threads without
        # the service lock, racing producer-thread publishes.
        handle.deltas_counter.inc()
        for sub in live:
            if sub.active:
                sub.callback(event)
        span.finish()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self, name: str, consistent: bool = True) -> GMR:
        """Pull the current contents of a view (a defensive copy).

        ``consistent=False`` skips the drain barrier for async-backed
        views and serves the last *flushed* state instead — a
        bounded-staleness read that never waits on the batcher (the
        snapshot-isolation mode replica readers and the cluster
        router's round-robin reads use).  Synchronous views are always
        current, so the flag is a no-op for them.
        """
        with self._lock:
            backend = self._handle(name).backend
            if not isinstance(backend, AsyncIngestBackend):
                # Sync engines mutate their state inside on_batch, which
                # runs under this lock — read under it too.
                return GMR(dict(backend.snapshot().data))
        if not consistent:
            # No barrier: the wrapper's inner_lock alone serializes the
            # read against an in-progress flush.
            return backend.peek_snapshot()
        # Async reads drain first (waiting on the batcher): do that
        # outside the service lock so producers are not stalled behind
        # the barrier; the wrapper's inner_lock serializes the read.
        return GMR(dict(backend.snapshot().data))

    def subscribe(
        self,
        name: str,
        callback: Callable[[ViewDelta], None],
        *,
        initial: bool = False,
    ) -> Subscription:
        """Receive a :class:`ViewDelta` after every batch that changes
        the view.

        With ``initial=True`` the callback is first invoked with a
        synthetic event carrying the current snapshot (``relation=None``),
        so accumulation equals ``snapshot(name)`` even when the view was
        warm at subscribe time.

        Call this from the producer thread (the one driving
        ``on_batch``).  For async-backed views that discipline is what
        makes ``initial=True`` exact: the internal drain empties the
        view's queue and no new batch can arrive before the snapshot
        event is delivered, so nothing is both pushed and included in
        the snapshot.  Subscribing from a second thread while another
        streams has no such guarantee.
        """
        if initial:
            with self._lock:
                backend = self._handle(name).backend
            if isinstance(backend, AsyncIngestBackend):
                # Work the backlog down *outside* the service lock so a
                # long drain does not stall every producer on every
                # view; the last_delta() below re-drains under the lock
                # but only covers the short gap since this barrier.
                backend.drain()
        with self._lock:
            handle = self._handle(name)
            if initial:
                # Flush coalesced changes owed to existing subscribers,
                # then re-baseline the changefeed: the snapshot event
                # below covers everything up to now, so the next
                # per-batch delta must not include it again.
                self._publish(handle, None, self._seq)
                handle.backend.last_delta()
            sub = Subscription(handle.name, callback)
            handle.subscriptions.append(sub)
            if initial:
                snap = self.snapshot(name)
                if not snap.is_zero():
                    callback(ViewDelta(handle.name, None, self._seq, snap))
            return sub

    # ------------------------------------------------------------------
    def _handle(self, name: str) -> ViewHandle:
        try:
            return self._views[name]
        except KeyError:
            known = ", ".join(sorted(self._views)) or "<none>"
            raise ServiceError(
                f"unknown view {name!r}; registered views: {known}"
            ) from None

    def __repr__(self) -> str:
        views = {
            h.name: h.backend_name for h in self._views.values()
        }
        return f"ViewService(views={views}, seq={self._seq})"
