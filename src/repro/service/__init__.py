"""Multi-view serving: :class:`ViewService` sessions.

The public serving API of the reproduction: one session hosts many
maintained views (SQL or algebra, each on any registered execution
backend) over shared base-relation streams, with pull snapshots and
push-based delta subscriptions.  See :mod:`repro.service.service` for
the full protocol and ARCHITECTURE.md ("Service layer") for how it sits
on top of the execution backends.
"""

from repro.service.dag import NODE_PREFIX, SharedNode, SubplanDAG
from repro.service.service import (
    ServiceError,
    Subscription,
    ViewDelta,
    ViewHandle,
    ViewService,
)
from repro.service.sharding import (
    PartitionPlan,
    infer_partition_plan,
    is_replicated_view,
)

__all__ = [
    "NODE_PREFIX",
    "PartitionPlan",
    "ServiceError",
    "SharedNode",
    "SubplanDAG",
    "Subscription",
    "ViewDelta",
    "ViewHandle",
    "ViewService",
    "infer_partition_plan",
    "is_replicated_view",
]
