"""Multi-view serving: :class:`ViewService` sessions.

The public serving API of the reproduction: one session hosts many
maintained views (SQL or algebra, each on any registered execution
backend) over shared base-relation streams, with pull snapshots and
push-based delta subscriptions.  See :mod:`repro.service.service` for
the full protocol and ARCHITECTURE.md ("Service layer") for how it sits
on top of the execution backends.
"""

from repro.service.service import (
    ServiceError,
    Subscription,
    ViewDelta,
    ViewHandle,
    ViewService,
)

__all__ = [
    "ServiceError",
    "Subscription",
    "ViewDelta",
    "ViewHandle",
    "ViewService",
]
