"""The service-wide shared-subplan DAG (higher-order IVM).

A :class:`~repro.service.ViewService` with sharing enabled factors
every ``create_view`` against this structure: each *distinct* shareable
subplan (distinct under :func:`~repro.compiler.canonicalize`) is
maintained exactly once by an internal, hidden :class:`SharedNode`,
and every dependent view consumes the node's native changefeed
(:meth:`~repro.exec.ExecutionBackend.last_delta`) as its input delta —
the paper's "views maintaining views" made service-wide.  Routing is
topological: a base batch first advances the shared nodes it streams
into, then each user view receives either the base batch directly or
the delta of a node it consumes.

Nodes are reference-counted by consumer edges.  ``drop_view`` releases
the dropped view's edges; a node is torn down only when its last
consumer leaves, so dropping one consumer never kills a shared node.

The structures here are bookkeeping only — creation policy (when to
materialize, when to promote an existing view into a node) lives in
:meth:`ViewService.create_view`, and all mutation happens under the
service lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec import ExecutionBackend
from repro.workloads.spec import QuerySpec

__all__ = ["NODE_PREFIX", "SharedNode", "SubplanDAG"]

#: name prefix of internal shared sub-views; user views and catalog
#: tables must not collide with it (``create_view`` enforces this)
NODE_PREFIX = "__shared_"


@dataclass
class SharedNode:
    """One internal shared sub-view: a maintenance program whose
    changefeed feeds every consumer of the subplan.

    ``mapping`` is the representative spelling's column renaming into
    canonical names (from :func:`~repro.compiler.canonicalize`);
    composing a consumer's own mapping inverse with it translates the
    node's physical columns (``rep_cols``, the tuple order of the
    node's GMR) into any consumer's column names.
    """

    name: str
    spec: QuerySpec
    backend: ExecutionBackend
    backend_name: str
    #: sharing key: (canonical expr, frozenset of updatable relations)
    key: object = field(repr=False)
    #: representative column name -> canonical name (a bijection)
    mapping: dict[str, str] = field(repr=False)
    #: physical output columns, in the node's tuple order
    rep_cols: tuple[str, ...] = ()
    #: base relations whose batches this node streams
    direct_rels: frozenset[str] = frozenset()
    #: short digest of the canonical form, for dumps/traces
    fingerprint: str = ""
    #: number of consumer edges (user views referencing this node)
    refcount: int = 0
    #: batches maintained so far
    batches: int = 0


class SubplanDAG:
    """Internal shared nodes, indexed by name and by sharing key."""

    def __init__(self) -> None:
        #: insertion-ordered: creation order is a topological order
        self.nodes: dict[str, SharedNode] = {}
        self.by_key: dict[object, SharedNode] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def next_name(self) -> str:
        name = f"{NODE_PREFIX}{self._counter}"
        self._counter += 1
        return name

    def add(self, node: SharedNode) -> SharedNode:
        self.nodes[node.name] = node
        self.by_key[node.key] = node
        return node

    def release(self, name: str) -> SharedNode | None:
        """Drop one consumer edge; returns the node if that freed it
        (the caller closes its backend outside the service lock)."""
        node = self.nodes.get(name)
        if node is None:
            return None
        node.refcount -= 1
        if node.refcount > 0:
            return None
        del self.nodes[name]
        self.by_key.pop(node.key, None)
        return node

    def dump(self, consumers: dict[str, list[str]] | None = None) -> list[dict]:
        """JSON-friendly node listing (for ``GET /views?dag=1`` and the
        CLI startup printout)."""
        consumers = consumers or {}
        return [
            {
                "name": n.name,
                "fingerprint": n.fingerprint,
                "backend": n.backend_name,
                "streams": sorted(n.direct_rels),
                "columns": list(n.rep_cols),
                "refcount": n.refcount,
                "batches": n.batches,
                "consumers": sorted(consumers.get(n.name, ())),
            }
            for n in self.nodes.values()
        ]
