"""Per-shard view placement: how a set of views partitions base data.

The cluster router (:mod:`repro.cluster`) hosts the *same* view
definitions on N shard :class:`~repro.service.ViewService` sessions and
merges their results by GMR addition.  That merge is exact only when
base relations are placed so every shard computes a disjoint additive
share of each view:

* a relation may be **partitioned** — each row lives on exactly one
  shard, chosen by a pure function of the row's partition-key columns —
  when every view is *linear* in it (the relation occurs once in the
  view's algebra) and every join it participates in is co-partitioned
  (both sides hashed on a shared join column);
* otherwise it must be **replicated** — every shard holds a full copy —
  which is always correct (nested aggregates, self-joins, non-equi
  references all see complete data) at the cost of broadcasting its
  update batches to every shard.

This module derives that placement from the view specs themselves:
:func:`infer_partition_plan` walks each query's algebra, finds the join
columns relations share (the algebra joins naturally, so shared column
names *are* the join keys), and produces a :class:`PartitionPlan` that
the router's shard map enforces.  Partition keys are stored as column
*positions* into the base-relation tuples: the SQL frontend renames
columns per view (``R.b`` and ``S.b`` both become the equivalence-class
name ``R_b``), so names are view-local, while positions are canonical
across views and match the tuples actually split at ingest time.

A view whose every base relation ends up replicated is itself fully
materialized on every shard — the router then answers its reads from
*one* shard round-robin instead of gathering, which is where replica
failover comes from.  The additive-merge premise holds because this
algebra keeps aggregate values in GMR *multiplicities* (group keys in
the tuple, the single aggregate in the ring annotation — the paper's
representation), so per-shard partial aggregates of disjoint data sum
to the global view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import Expr, Rel, children, is_expr
from repro.workloads.spec import QuerySpec

__all__ = [
    "PartitionPlan",
    "infer_partition_plan",
    "is_replicated_view",
]


@dataclass(frozen=True)
class PartitionPlan:
    """Placement of base relations across a shard set.

    ``keys`` maps each partitioned relation to its partition-key column
    *positions* (indices into the relation's tuples); an *empty* tuple
    means the relation is unconstrained (no view joins it against
    anything) and may be split on the whole row.  Relations in
    ``replicated`` are broadcast to every shard instead.  Every
    relation any view references appears in exactly one of the two.
    """

    keys: dict[str, tuple[int, ...]]
    replicated: frozenset[str]

    def describe(
        self, catalog: dict[str, tuple[str, ...]] | None = None
    ) -> str:
        """Human-readable placement; with a ``catalog``, key positions
        render as the table's column names."""

        def key_name(rel: str, pos: int) -> str:
            cols = (catalog or {}).get(rel)
            return cols[pos] if cols and pos < len(cols) else f"#{pos}"

        parts = [
            f"{rel}:hash({','.join(key_name(rel, p) for p in poss) or '*'})"
            for rel, poss in sorted(self.keys.items())
        ]
        parts.extend(f"{rel}:replicated" for rel in sorted(self.replicated))
        return " ".join(parts) or "<empty>"


#: per-relation demand lattice values (internal)
_ANY = "any"
_REPLICATE = "replicate"


def _collect_rels(e: Expr) -> list[Rel]:
    """Every base-relation occurrence in an expression, in walk order
    (a relation occurring twice — self-join, nested aggregate over the
    same table — appears twice)."""
    out: list[Rel] = []
    stack = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, Rel):
            out.append(node)
        for child in children(node):
            if is_expr(child):
                stack.append(child)
    return out


def _view_demands(spec: QuerySpec) -> dict[str, object]:
    """One view's placement demand per referenced relation: a tuple of
    key *positions*, ``_ANY`` (unconstrained), or ``_REPLICATE``."""
    rels = _collect_rels(spec.query)
    occurrences: dict[str, int] = {}
    cols_of: dict[str, tuple[str, ...]] = {}
    for r in rels:
        occurrences[r.name] = occurrences.get(r.name, 0) + 1
        cols_of.setdefault(r.name, r.cols)

    demands: dict[str, object] = {}
    if len(cols_of) == 1:
        # Single-relation view: linear in its one input when that input
        # occurs once, so any disjoint split of the rows is exact.
        for name, n in occurrences.items():
            demands[name] = _ANY if n == 1 else _REPLICATE
        return demands

    # Multi-relation view: pick ONE shared column to co-partition on.
    # Co-partitioning on a subset of the join columns is sufficient
    # (rows equal on all join columns are certainly equal on the chosen
    # one, so every joining pair meets on one shard); relations that
    # lack the column — or occur nonlinearly — must be replicated.
    containing: dict[str, set[str]] = {}
    for name, cols in cols_of.items():
        for c in cols:
            containing.setdefault(c, set()).add(name)
    # key_hints name catalog columns; the algebra renames R.b to e.g.
    # "R_b", so match hints against both the raw and the table-prefixed
    # form (a tie-break only — correctness never depends on hints).
    hinted = set()
    for rel, cols in spec.key_hints.items():
        for c in cols:
            hinted.add(c)
            hinted.add(f"{rel}_{c}")
    shared = [c for c, rels_with in containing.items() if len(rels_with) >= 2]
    best = min(
        shared,
        key=lambda c: (-len(containing[c]), c not in hinted, c),
        default=None,
    )
    for name, n in occurrences.items():
        if n > 1 or best is None or best not in cols_of[name]:
            demands[name] = _REPLICATE
        else:
            demands[name] = (cols_of[name].index(best),)
    return demands


def infer_partition_plan(specs) -> PartitionPlan:
    """Derive one consistent :class:`PartitionPlan` for a set of views.

    Per-view demands merge per relation: ``replicate`` dominates (one
    nonlinear or non-co-partitionable use poisons the relation for
    everyone), two views demanding *different* key positions also force
    replication (a row cannot live on two shards), a concrete key beats
    ``any``, and a relation every view is indifferent about stays
    partitioned on the whole row.
    """
    merged: dict[str, object] = {}
    for spec in specs:
        for name, demand in _view_demands(spec).items():
            prior = merged.get(name)
            if prior is None:
                merged[name] = demand
            elif demand == _REPLICATE or prior == _REPLICATE:
                merged[name] = _REPLICATE
            elif prior == _ANY:
                merged[name] = demand
            elif demand == _ANY or demand == prior:
                pass  # prior concrete key stands
            else:  # two different concrete keys
                merged[name] = _REPLICATE

    keys: dict[str, tuple[int, ...]] = {}
    replicated: set[str] = set()
    for name, demand in merged.items():
        if demand == _REPLICATE:
            replicated.add(name)
        elif demand == _ANY:
            keys[name] = ()
        else:
            keys[name] = tuple(demand)
    return PartitionPlan(keys=keys, replicated=frozenset(replicated))


def is_replicated_view(spec: QuerySpec, plan: PartitionPlan) -> bool:
    """True when every relation the view references is replicated under
    ``plan`` — the view is then fully materialized on every shard, and
    reads round-robin across shards instead of gathering."""
    rels = {r.name for r in _collect_rels(spec.query)}
    return bool(rels) and rels <= plan.replicated
