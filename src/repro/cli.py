"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-queries`` — the benchmark workloads and their metadata;
* ``compile`` — show the maintenance program compiled for a workload
  query or an ad-hoc SQL string;
* ``run`` — stream a generated dataset through an execution backend and
  report throughput;
* ``list-backends`` — the registered execution backends;
* ``distributed`` — compile for the simulated cluster and show the
  blocks/jobs plan (optionally execute a weak-scaling sweep);
* ``advise`` — rank partitioning strategies for a query.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import format_table


def _resolve_spec(args):
    from repro.query.sqlfront import sql_to_spec
    from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES

    if getattr(args, "sql", None):
        catalog = _demo_catalog()
        return sql_to_spec("ADHOC", args.sql, catalog)
    name = args.query
    for family in (TPCH_QUERIES, TPCDS_QUERIES, MICRO_QUERIES):
        if name in family:
            return family[name]
    raise SystemExit(f"unknown query {name!r}; see 'list-queries'")


def _demo_catalog():
    from repro.workloads import MICRO_TABLES, TPCH_TABLES

    catalog = dict(TPCH_TABLES)
    catalog.update(MICRO_TABLES)
    return catalog


def cmd_list_queries(_args) -> int:
    from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES

    rows = []
    for family, queries in (
        ("tpch", TPCH_QUERIES),
        ("tpcds", TPCDS_QUERIES),
        ("micro", MICRO_QUERIES),
    ):
        for name in sorted(queries):
            spec = queries[name]
            rows.append(
                (family, name, ",".join(sorted(spec.updatable)))
            )
    print(format_table(("workload", "query", "streamed relations"), rows))
    return 0


def cmd_compile(args) -> int:
    from repro.compiler import apply_batch_preaggregation, compile_query

    spec = _resolve_spec(args)
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    if args.preagg:
        program = apply_batch_preaggregation(program)
    print(program.describe())
    print(
        f"\n{program.view_count()} materialized views, "
        f"{program.statement_count()} trigger statements"
    )
    return 0


def cmd_list_backends(_args) -> int:
    from repro.exec import available_backends, backend_info

    rows = [
        (name, backend_info(name).description)
        for name in available_backends()
    ]
    print(format_table(("backend", "description"), rows))
    return 0


def cmd_run(args) -> int:
    from repro.exec import available_backends
    from repro.harness import measure_throughput

    if args.backend and args.backend not in available_backends():
        raise SystemExit(
            f"unknown backend {args.backend!r}; choose one of: "
            + ", ".join(available_backends())
        )
    spec = _resolve_spec(args)
    workload = args.workload
    result = measure_throughput(
        spec,
        args.backend or args.strategy,
        None if args.batch_size == 0 else args.batch_size,
        workload=workload,
        sf=args.sf,
        max_batches=args.max_batches,
        use_compiled=not args.interpreted,
    )
    print(
        format_table(
            ("query", "strategy", "batch", "tuples", "seconds", "tuples/s"),
            [
                (
                    result.query,
                    result.strategy,
                    result.batch_label,
                    result.n_tuples,
                    round(result.elapsed_s, 3),
                    round(result.throughput),
                )
            ],
        )
    )
    return 0


def cmd_distributed(args) -> int:
    from repro.distributed import compile_distributed
    from repro.harness import weak_scaling

    spec = _resolve_spec(args)
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable, opt_level=args.opt_level,
    )
    print(dprog.describe())
    if args.workers:
        workers = tuple(int(w) for w in args.workers.split(","))
        points = weak_scaling(
            spec, workers=workers, tuples_per_worker=args.tuples_per_worker,
            sf=args.sf, max_batches=args.max_batches,
        )
        print()
        print(
            format_table(
                ("workers", "batch", "median latency (s)", "tuples/s"),
                [
                    (
                        p.n_workers,
                        p.batch_size,
                        round(p.median_latency_s, 4),
                        round(p.throughput_tuples_per_s),
                    )
                    for p in points
                ],
                title=f"weak scaling of {spec.name}",
            )
        )
    return 0


def cmd_advise(args) -> int:
    from repro.compiler import compile_query
    from repro.distributed import PartitioningAdvisor

    spec = _resolve_spec(args)
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    advisor = PartitioningAdvisor(program, spec.key_hints)
    rows = [
        (c.candidate, c.transformers, c.jobs, c.stages)
        for c in advisor.rank()
    ]
    print(
        format_table(
            ("strategy", "transformers", "jobs", "stages"),
            rows,
            title=f"partitioning strategies for {spec.name}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed incremental view maintenance with batch updates "
            "(SIGMOD 2016 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-queries", help="list benchmark queries")

    sub.add_parser("list-backends", help="list registered execution backends")

    p = sub.add_parser("compile", help="show a compiled maintenance program")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql", help="compile an ad-hoc SQL string instead")
    p.add_argument(
        "--preagg", action="store_true",
        help="apply batch pre-aggregation",
    )

    p = sub.add_parser("run", help="measure one engine over a stream")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")
    p.add_argument("--strategy", default="rivm-batch",
                   choices=["rivm-single", "rivm-batch", "rivm-specialized",
                            "reeval", "civm"])
    p.add_argument("--backend", default=None,
                   help="execution backend (overrides --strategy; "
                        "see 'list-backends')")
    p.add_argument("--interpreted", action="store_true",
                   help="run statements through the interpreted evaluator "
                        "instead of compile-once pipelines")
    p.add_argument("--batch-size", type=int, default=100,
                   help="0 = single-tuple execution")
    p.add_argument("--workload", default="tpch",
                   choices=["tpch", "tpcds", "micro"])
    p.add_argument("--sf", type=float, default=0.0005)
    p.add_argument("--max-batches", type=int, default=None)

    p = sub.add_parser("distributed", help="distributed plan (and sweep)")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")
    p.add_argument("--opt-level", type=int, default=3, choices=[0, 1, 2, 3])
    p.add_argument("--workers", help="comma-separated counts, e.g. 2,4,8")
    p.add_argument("--tuples-per-worker", type=int, default=100)
    p.add_argument("--sf", type=float, default=0.002)
    p.add_argument("--max-batches", type=int, default=3)

    p = sub.add_parser("advise", help="rank partitioning strategies")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")

    return parser


_COMMANDS = {
    "list-queries": cmd_list_queries,
    "list-backends": cmd_list_backends,
    "compile": cmd_compile,
    "run": cmd_run,
    "distributed": cmd_distributed,
    "advise": cmd_advise,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
