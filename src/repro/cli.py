"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-queries`` — the benchmark workloads and their metadata;
* ``compile`` — show the maintenance program compiled for a workload
  query or an ad-hoc SQL string;
* ``run`` — stream a generated dataset through an execution backend and
  report throughput;
* ``serve`` — host several views (workload queries and/or ad-hoc SQL,
  mixed backends) on one :class:`~repro.service.ViewService` over a
  shared stream and report per-view freshness — or, with ``--port``,
  host them on a real HTTP socket (:class:`~repro.net.ViewServer`) for
  remote clients to stream batches into and subscribe to deltas from;
* ``route`` — front a set of already-running shard ``serve --port``
  servers with a :class:`~repro.cluster.ClusterRouter`: one scatter/
  gather HTTP endpoint speaking the same wire protocol, partitioning
  batches across the shards and merging their delta streams;
* ``top`` — poll a server's or router's ``GET /metrics`` and render a
  live per-view rate table (batches/s, deltas/s, maintain p50/p99);
* ``list-backends`` — the registered execution backends;
* ``distributed`` — compile for the simulated cluster and show the
  blocks/jobs plan (optionally execute a weak-scaling sweep);
* ``advise`` — rank partitioning strategies for a query.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import format_table


def _find_workload_query(name: str, prefer: str | None = None):
    """Look up a workload query by name, trying ``prefer``'s family
    first so colliding names (Q3 exists in both TPC-H and TPC-DS) bind
    to the workload the user asked for.  Returns None when unknown."""
    from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES

    families = {
        "tpch": TPCH_QUERIES, "tpcds": TPCDS_QUERIES, "micro": MICRO_QUERIES,
    }
    ordered = [families.pop(prefer)] if prefer in families else []
    ordered.extend(families.values())
    for family in ordered:
        if name in family:
            return family[name]
    return None


def _resolve_spec(args):
    from repro.query.sqlfront import sql_to_spec

    if getattr(args, "sql", None):
        catalog = _demo_catalog()
        return sql_to_spec("ADHOC", args.sql, catalog)
    name = args.query
    spec = _find_workload_query(name, prefer=getattr(args, "workload", None))
    if spec is None:
        raise SystemExit(f"unknown query {name!r}; see 'list-queries'")
    return spec


def _demo_catalog():
    from repro.workloads import MICRO_TABLES, TPCH_TABLES

    catalog = dict(TPCH_TABLES)
    catalog.update(MICRO_TABLES)
    return catalog


def cmd_list_queries(_args) -> int:
    from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES

    rows = []
    for family, queries in (
        ("tpch", TPCH_QUERIES),
        ("tpcds", TPCDS_QUERIES),
        ("micro", MICRO_QUERIES),
    ):
        for name in sorted(queries):
            spec = queries[name]
            rows.append(
                (family, name, ",".join(sorted(spec.updatable)))
            )
    print(format_table(("workload", "query", "streamed relations"), rows))
    return 0


def cmd_compile(args) -> int:
    from repro.compiler import apply_batch_preaggregation, compile_query

    spec = _resolve_spec(args)
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    if args.preagg:
        program = apply_batch_preaggregation(program)
    print(program.describe())
    print(
        f"\n{program.view_count()} materialized views, "
        f"{program.statement_count()} trigger statements"
    )
    return 0


def cmd_list_backends(_args) -> int:
    from repro.exec import available_backends, backend_info

    rows = [
        (name, backend_info(name).description)
        for name in available_backends()
    ]
    print(format_table(("backend", "description"), rows))
    print(
        "\nany backend can be wrapped as async:<backend> — bounded-queue "
        "ingestion with a batcher thread (see 'run --async')"
    )
    return 0


def _resolve_backend(args, default: str = "rivm-batch") -> str:
    """``--backend`` with ``--strategy`` as a deprecated hidden alias."""
    import warnings

    from repro.exec import available_backends, is_registered

    backend = args.backend
    if getattr(args, "strategy", None):
        warnings.warn(
            "--strategy is deprecated; use --backend instead",
            DeprecationWarning,
            stacklevel=2,
        )
        print(
            "warning: --strategy is deprecated; use --backend",
            file=sys.stderr,
        )
        if backend is None:
            backend = args.strategy
    backend = backend or default
    if not is_registered(backend):
        raise SystemExit(
            f"unknown backend {backend!r}; choose one of: "
            + ", ".join(available_backends())
            + " (each also available as async:<backend>)"
        )
    return backend


def _async_options(args, implied: bool = False) -> dict | None:
    """The ingestion-layer options of ``--async``, or ``None`` when
    async ingestion was not requested (rejecting stray async knobs).

    ``implied`` marks an explicitly async backend name
    (``--backend async:rivm-batch``): the knobs then apply without
    requiring a redundant ``--async``.
    """
    opts = {}
    if args.policy is not None:
        opts["policy"] = args.policy
    if args.max_batch is not None:
        opts["max_batch"] = args.max_batch
    if args.max_delay is not None:
        opts["max_delay_s"] = args.max_delay
    if not args.async_ingest and not implied:
        if opts:
            raise SystemExit(
                "--policy/--max-batch/--max-delay configure the async "
                "ingestion layer; add --async to enable it"
            )
        return None
    return opts


def _add_async_arguments(p) -> None:
    p.add_argument(
        "--async", dest="async_ingest", action="store_true",
        help="wrap the backend(s) in the async ingestion layer "
             "(bounded queue + batcher thread; backend becomes "
             "async:<backend>)",
    )
    p.add_argument(
        "--policy", default=None, choices=["fixed", "delay", "adaptive"],
        help="async batching policy (requires --async; default fixed)",
    )
    p.add_argument(
        "--max-batch", type=int, default=None,
        help="async flush-size target in tuples (requires --async)",
    )
    p.add_argument(
        "--max-delay", type=float, default=None,
        help="async max seconds a queued update may wait before its "
             "flush (requires --async; delay/adaptive policies)",
    )


def _validated_workers(args) -> int | None:
    """``--workers`` must be a positive count; a broken coordinator
    spawn is a far worse error message than this one."""
    if args.workers is not None and args.workers < 1:
        raise SystemExit(
            f"--workers must be at least 1 (got {args.workers}); the "
            "cluster/multiproc backends need at least one worker"
        )
    return args.workers


def cmd_run(args) -> int:
    from repro.harness import measure_throughput

    backend = _resolve_backend(args)
    spec = _resolve_spec(args)
    workload = args.workload
    backend_options = {}
    workers = _validated_workers(args)
    if workers is not None:
        backend_options["n_workers"] = workers
    if args.data_plane is not None:
        backend_options["data_plane"] = args.data_plane
    async_opts = _async_options(args, implied=backend.startswith("async:"))
    if async_opts is not None:
        if not backend.startswith("async:"):
            backend = f"async:{backend}"
        backend_options.update(async_opts)
    result = measure_throughput(
        spec,
        backend,
        None if args.batch_size == 0 else args.batch_size,
        workload=workload,
        sf=args.sf,
        max_batches=args.max_batches,
        use_compiled=not args.interpreted,
        **backend_options,
    )
    print(
        format_table(
            ("query", "strategy", "batch", "tuples", "seconds", "tuples/s"),
            [
                (
                    result.query,
                    result.strategy,
                    result.batch_label,
                    result.n_tuples,
                    round(result.elapsed_s, 3),
                    round(result.throughput),
                )
            ],
        )
    )
    return 0


def cmd_serve(args) -> int:
    from repro.exec import available_backends, is_registered
    from repro.harness import ViewDef, measure_service_throughput

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not backends:
        raise SystemExit("--backends needs at least one backend name")
    for b in backends:
        if not is_registered(b):
            raise SystemExit(
                f"unknown backend {b!r}; choose from: "
                + ", ".join(available_backends())
                + " (each also available as async:<backend>)"
            )

    defs: list[ViewDef] = []
    view_options = {}
    workers = _validated_workers(args)
    if workers is not None:
        view_options["n_workers"] = workers
    if args.data_plane is not None:
        view_options["data_plane"] = args.data_plane
    # --async wraps every backend in the round-robin list; without it,
    # explicitly named async:<backend> entries still imply the knobs —
    # applied only to those views, so a mixed list keeps its
    # synchronous backends synchronous.
    async_opts = _async_options(
        args, implied=any(b.startswith("async:") for b in backends)
    )
    if args.async_ingest:
        backends = [
            b if b.startswith("async:") else f"async:{b}" for b in backends
        ]

    def next_backend() -> str:
        return backends[len(defs) % len(backends)]

    def options_for(backend_name: str) -> dict:
        options = dict(view_options)
        if async_opts and backend_name.startswith("async:"):
            options.update(async_opts)
        return options

    for name in args.views:
        spec = _find_workload_query(name, prefer=args.workload)
        if spec is None:
            raise SystemExit(f"unknown query {name!r}; see 'list-queries'")
        backend = next_backend()
        defs.append(ViewDef(name, spec, backend, options_for(backend)))
    for item in args.sql:
        view_name, sep, sql = item.partition("=")
        if not sep or not view_name or not sql:
            raise SystemExit(
                f"--sql expects NAME=SELECT ..., got {item!r}"
            )
        backend = next_backend()
        defs.append(ViewDef(view_name, sql, backend, options_for(backend)))
    if not defs and args.port is None:
        # Network mode can start empty: clients create views over
        # HTTP, and a --wal-dir server recovers its views from the log.
        raise SystemExit("serve needs at least one view (names or --sql)")
    seen: set[str] = set()
    for d in defs:
        if d.name in seen:
            raise SystemExit(f"duplicate view name {d.name!r}")
        seen.add(d.name)

    if args.port is not None:
        return _serve_network(args, defs)

    result = measure_service_throughput(
        defs,
        args.batch_size,
        workload=args.workload,
        sf=args.sf,
        max_batches=args.max_batches,
        catalog=_demo_catalog(),
    )
    print(
        format_table(
            ("view", "backend", "streams", "batches", "deltas", "tuples"),
            [
                (
                    v.name,
                    v.backend,
                    ",".join(v.streamed),
                    v.batches_applied,
                    v.deltas_delivered,
                    v.snapshot_tuples,
                )
                for v in result.views
            ],
            title=f"serving {len(result.views)} views over one stream",
        )
    )
    for v in result.views:
        if v.starved:
            print(
                f"warning: view {v.name!r} streams "
                f"{','.join(v.streamed)}, which the {args.workload!r} "
                "workload never generates — it will stay empty "
                "(wrong --workload?)",
                file=sys.stderr,
            )
    print(
        f"\n{result.n_tuples} streamed tuples in {result.n_batches} batches; "
        f"{round(result.throughput)} tuples/s shared-stream, "
        f"{round(result.routed_throughput)} tuples/s routed "
        f"({result.routed_tuples} view-deliveries)"
    )
    return 0


def _print_dag(service) -> None:
    """Startup printout of the shared-subplan DAG: which internal
    sub-views exist, who consumes their changefeed, and how many full
    maintenance programs actually run."""
    dump = service.dag_dump()
    if not dump["sharing"]:
        print("sharing: off (every view runs its own full program)",
              flush=True)
        return
    nodes = dump["nodes"]
    if not nodes:
        return  # nothing factored (yet) — keep startup output quiet
    n_views = len(dump["views"])
    print(
        f"shared subplan DAG: {len(nodes)} internal node(s); "
        f"{dump['maintenance_programs']} maintenance program(s) "
        f"for {n_views} view(s)",
        flush=True,
    )
    for node in nodes:
        print(
            f"  node {node['name']} [{node['fingerprint']}] streams "
            + (",".join(node["streams"]) or "-")
            + " -> " + (",".join(node["consumers"]) or "-"),
            flush=True,
        )


def _serve_network(args, defs) -> int:
    """``serve --port``: host the views on a real socket until
    interrupted (or a client POSTs /shutdown)."""
    from repro.net import ViewServer
    from repro.service import ViewService
    from repro.workloads import as_query_spec

    catalog = _demo_catalog()
    tracer = None
    if getattr(args, "trace_out", None):
        from repro.obs import Tracer

        tracer = Tracer(out=args.trace_out)
    sharing = not getattr(args, "no_sharing", False)
    if getattr(args, "wal_dir", None):
        from repro.durability import DurableViewService

        service = DurableViewService(
            args.wal_dir, catalog=catalog, tracer=tracer,
            checkpoint_every=args.checkpoint_every, fsync=args.fsync,
            sharing=sharing,
        )
        rec = service.recovered or {}
        print(
            f"durable: wal-dir={args.wal_dir} fsync={args.fsync} "
            f"checkpoint-every={args.checkpoint_every}",
            flush=True,
        )
        if rec.get("seq"):
            print(
                f"recovered seq={rec['seq']} "
                f"(checkpoint={rec['checkpoint_seq']}, "
                f"replayed={rec['replayed']} batches, "
                f"views={','.join(rec['views']) or '-'})",
                flush=True,
            )
    else:
        service = ViewService(catalog=catalog, tracer=tracer,
                              sharing=sharing)
    for d in defs:
        if d.name in service.views():
            continue  # recovered from the checkpoint/WAL already
        spec = as_query_spec(d.source, name=d.name, catalog=catalog)
        service.create_view(d.name, spec, backend=d.backend, **d.options)
    server_kwargs = {}
    if getattr(args, "stream_queue_limit", None) is not None:
        server_kwargs["stream_queue_limit"] = args.stream_queue_limit
    if getattr(args, "max_batches_per_sec", None) is not None:
        server_kwargs["max_batches_per_sec"] = args.max_batches_per_sec
    server = ViewServer(
        service, host=args.host, port=args.port,
        auth_token=args.auth_token, **server_kwargs,
    )
    if args.auth_token:
        print("auth: bearer token required (all endpoints but /health)",
              flush=True)
    if server.rate_limiter is not None:
        print(
            f"quota: max {args.max_batches_per_sec:g} batches/s per "
            "client on POST /batch (429 + Retry-After beyond it)",
            flush=True,
        )
    print(f"serving {len(defs)} views on {server.url}", flush=True)
    for d in defs:
        handle = service.view(d.name)
        print(
            f"  view {d.name!r} [{d.backend}] streams "
            + ",".join(sorted(handle.relations)),
            flush=True,
        )
    _print_dag(service)
    print(
        "endpoints: GET /health /views /views/<v>/snapshot "
        "/views/<v>/deltas /metrics /trace/recent | POST /views "
        "/batch/<rel> /drain /shutdown | DELETE /views/<v>",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        server.close()
        if hasattr(service, "wal"):  # durable: flush + close the log
            service.close()
    print("server closed", flush=True)
    return 0


def _parse_boundaries(text: str) -> list:
    """``--boundaries 10,20,30`` with numeric literals coerced (string
    cut points stay strings, matching string-typed key columns)."""
    out = []
    for piece in text.split(","):
        piece = piece.strip()
        try:
            out.append(int(piece))
        except ValueError:
            try:
                out.append(float(piece))
            except ValueError:
                out.append(piece)
    return out


def cmd_route(args) -> int:
    """``route``: front already-running shard servers with a router."""
    from repro.cluster import ClusterRouter

    defs = []
    for item in args.sql:
        view_name, sep, sql = item.partition("=")
        if not sep or not view_name or not sql:
            raise SystemExit(f"--sql expects NAME=SELECT ..., got {item!r}")
        defs.append((view_name, sql))

    tracer = None
    if getattr(args, "trace_out", None):
        from repro.obs import Tracer

        tracer = Tracer(out=args.trace_out)
    router = ClusterRouter(
        args.shards,
        _demo_catalog(),
        partition=args.partition,
        boundaries=_parse_boundaries(args.boundaries) if args.boundaries else None,
        host=args.host,
        port=args.port,
        auth_token=args.auth_token,
        shard_token=args.shard_token,
        tracer=tracer,
        **(
            {"stream_queue_limit": args.stream_queue_limit}
            if args.stream_queue_limit is not None
            else {}
        ),
        **(
            {"max_batches_per_sec": args.max_batches_per_sec}
            if getattr(args, "max_batches_per_sec", None) is not None
            else {}
        ),
    )
    n = router.shardmap.n_shards
    if router.rate_limiter is not None:
        print(
            f"quota: max {args.max_batches_per_sec:g} batches/s per "
            "client on POST /batch (429 + Retry-After beyond it)",
            flush=True,
        )
    print(
        f"routing {n} shard group(s): "
        + " ".join(
            "+".join(f"{h}:{p}" for h, p in router.shardmap.endpoints(s))
            for s in range(n)
        ),
        flush=True,
    )
    try:
        for view_name, sql in defs:
            info = router.create_view(
                view_name, sql, backend=args.backend
            )
            kind = "replicated" if info["replicated"] else "partitioned"
            print(
                f"  view {view_name!r} [{info['backend']}] streams "
                + ",".join(info["streams"]) + f" ({kind})",
                flush=True,
            )
        if defs:
            print(
                "placement: "
                + router.shardmap.plan.describe(router.catalog),
                flush=True,
            )
    except Exception as exc:
        router.close()
        raise SystemExit(f"route: creating views failed: {exc}")
    print(f"router serving on {router.url}", flush=True)
    print(
        "endpoints: GET /health /shards /views /views/<v>/snapshot "
        "/views/<v>/deltas /metrics /trace/recent | POST /views "
        "/batch/<rel> /drain /shutdown | DELETE /views/<v>",
        flush=True,
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        router.close()
    print("router closed", flush=True)
    return 0


def cmd_top(args) -> int:
    """``top``: live per-view metrics from a ``/metrics`` endpoint."""
    from repro.obs.top import run_top

    url = args.url
    if "://" not in url:
        url = f"http://{url}"
    return run_top(
        url,
        interval=args.interval,
        iterations=args.iterations,
        auth_token=args.auth_token,
        clear=not args.no_clear,
    )


def cmd_distributed(args) -> int:
    from repro.distributed import compile_distributed
    from repro.harness import weak_scaling

    spec = _resolve_spec(args)
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable, opt_level=args.opt_level,
    )
    print(dprog.describe())
    if args.workers:
        workers = tuple(int(w) for w in args.workers.split(","))
        points = weak_scaling(
            spec, workers=workers, tuples_per_worker=args.tuples_per_worker,
            sf=args.sf, max_batches=args.max_batches,
        )
        print()
        print(
            format_table(
                ("workers", "batch", "median latency (s)", "tuples/s"),
                [
                    (
                        p.n_workers,
                        p.batch_size,
                        round(p.median_latency_s, 4),
                        round(p.throughput_tuples_per_s),
                    )
                    for p in points
                ],
                title=f"weak scaling of {spec.name}",
            )
        )
    return 0


def cmd_advise(args) -> int:
    from repro.compiler import compile_query
    from repro.distributed import PartitioningAdvisor

    spec = _resolve_spec(args)
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    advisor = PartitioningAdvisor(program, spec.key_hints)
    rows = [
        (c.candidate, c.transformers, c.jobs, c.stages)
        for c in advisor.rank()
    ]
    print(
        format_table(
            ("strategy", "transformers", "jobs", "stages"),
            rows,
            title=f"partitioning strategies for {spec.name}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed incremental view maintenance with batch updates "
            "(SIGMOD 2016 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-queries", help="list benchmark queries")

    sub.add_parser("list-backends", help="list registered execution backends")

    p = sub.add_parser("compile", help="show a compiled maintenance program")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql", help="compile an ad-hoc SQL string instead")
    p.add_argument(
        "--preagg", action="store_true",
        help="apply batch pre-aggregation",
    )

    p = sub.add_parser("run", help="measure one engine over a stream")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")
    p.add_argument("--backend", default=None,
                   help="execution backend (default rivm-batch; "
                        "see 'list-backends')")
    # Deprecated alias of --backend; hidden from --help, kept so old
    # invocations keep working (with a warning).
    p.add_argument("--strategy", default=None, help=argparse.SUPPRESS)
    p.add_argument("--interpreted", action="store_true",
                   help="run statements through the interpreted evaluator "
                        "instead of compile-once pipelines")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for the cluster/multiproc backends")
    p.add_argument("--data-plane", default=None, choices=["pickle", "shm"],
                   help="multiproc payload transport: shared-memory "
                        "blocks (shm, default) or pickled GMRs over "
                        "pipes (pickle)")
    _add_async_arguments(p)
    p.add_argument("--batch-size", type=int, default=100,
                   help="0 = single-tuple execution")
    p.add_argument("--workload", default="tpch",
                   choices=["tpch", "tpcds", "micro"])
    p.add_argument("--sf", type=float, default=0.0005)
    p.add_argument("--max-batches", type=int, default=None)

    p = sub.add_parser(
        "serve",
        help="host several views on one ViewService over a shared stream",
    )
    p.add_argument(
        "views", nargs="*",
        help="workload query names to serve as views, from the chosen "
             "--workload (e.g. Q1 Q6 for tpch; M1 M2 for micro)",
    )
    p.add_argument(
        "--sql", action="append", default=[], metavar="NAME=SELECT...",
        help="add an ad-hoc SQL view over the demo catalog (repeatable; "
             "R/S/T tables stream under --workload micro)",
    )
    p.add_argument(
        "--backends", default="rivm-batch",
        help="comma-separated backends assigned to views round-robin",
    )
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for cluster/multiproc-backed views")
    p.add_argument("--data-plane", default=None, choices=["pickle", "shm"],
                   help="multiproc payload transport: shared-memory "
                        "blocks (shm, default) or pickled GMRs (pickle)")
    _add_async_arguments(p)
    p.add_argument(
        "--port", type=int, default=None,
        help="host the views on a real socket (repro.net.ViewServer) "
             "instead of running the measurement loop; 0 binds an "
             "ephemeral port.  Clients then stream batches and "
             "subscribe to deltas over HTTP (see repro.net.Client)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --port (default 127.0.0.1)",
    )
    p.add_argument(
        "--auth-token", default=None,
        help="with --port: require 'Authorization: Bearer <token>' on "
             "every endpoint except GET /health",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --port: tee every trace span to this NDJSON file "
             "(the in-memory ring behind GET /trace/recent stays on)",
    )
    p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="with --port: make the service durable — log every acked "
             "batch to a write-ahead log in DIR, checkpoint "
             "periodically, and recover checkpoint+WAL from DIR on "
             "startup (enables from_seq stream resume)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="with --wal-dir: checkpoint state and truncate the WAL "
             "every N batches (0 disables; default 1000)",
    )
    p.add_argument(
        "--fsync", default="interval", choices=["always", "interval", "off"],
        help="with --wal-dir: fsync every record (always), at most "
             "every 50ms (interval, default), or never (off — the OS "
             "page cache decides)",
    )
    p.add_argument(
        "--stream-queue-limit", type=int, default=None, metavar="N",
        help="with --port: per-subscriber stream queue bound; a reader "
             "lagging more than N queued events is dropped with a "
             "typed 'lagging' close and can resume via from_seq "
             "(default 256)",
    )
    p.add_argument(
        "--max-batches-per-sec", type=float, default=None, metavar="N",
        help="with --port: per-client ingest quota on POST /batch — a "
             "token bucket of N batches/second per bearer token (or "
             "peer address); over-quota requests get 429 with a "
             "Retry-After header",
    )
    p.add_argument(
        "--no-sharing", action="store_true",
        help="disable cross-view subplan sharing: every view runs its "
             "own full maintenance program (the default factors "
             "structurally-equal subplans into shared internal "
             "sub-views maintained once)",
    )
    p.add_argument("--batch-size", type=int, default=100)
    p.add_argument("--workload", default="tpch",
                   choices=["tpch", "tpcds", "micro"])
    p.add_argument("--sf", type=float, default=0.0005)
    p.add_argument("--max-batches", type=int, default=None)

    p = sub.add_parser(
        "route",
        help="scatter/gather router over running shard servers",
    )
    p.add_argument(
        "--shards", required=True,
        help="shard topology: comma-separated groups of host:port "
             "endpoints, replicas joined with '+' "
             "(e.g. 'localhost:9001,localhost:9002' or "
             "'a:9001+b:9001,a:9002+b:9002')",
    )
    p.add_argument(
        "--partition", default="hash", choices=["hash", "range"],
        help="how partitioned relations split across shards "
             "(default hash; range needs --boundaries)",
    )
    p.add_argument(
        "--boundaries", default=None,
        help="range mode: the n_shards-1 ascending cut values on the "
             "partition-key column, comma-separated (e.g. 100,200,300)",
    )
    p.add_argument(
        "--sql", action="append", default=[], metavar="NAME=SELECT...",
        help="create this view on every shard at startup (repeatable)",
    )
    p.add_argument(
        "--backend", default="async:rivm-batch",
        help="execution backend for --sql views on the shards "
             "(default async:rivm-batch)",
    )
    p.add_argument("--port", type=int, default=0,
                   help="router bind port (0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--auth-token", default=None,
        help="bearer token the router's own clients must present",
    )
    p.add_argument(
        "--shard-token", default=None,
        help="bearer token the router presents to the shard servers "
             "(their 'serve --auth-token' value)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="tee the router's trace spans to this NDJSON file",
    )
    p.add_argument(
        "--stream-queue-limit", type=int, default=None, metavar="N",
        help="per-subscriber merged-stream queue bound; a lagging "
             "reader is dropped with a typed 'lagging' close "
             "(default 256)",
    )
    p.add_argument(
        "--max-batches-per-sec", type=float, default=None, metavar="N",
        help="per-client ingest quota on POST /batch — a token bucket "
             "of N batches/second per bearer token (or peer address); "
             "over-quota requests get 429 with a Retry-After header",
    )

    p = sub.add_parser(
        "top",
        help="live per-view metrics from a server or router /metrics",
    )
    p.add_argument(
        "url",
        help="base URL (or host:port) of a 'serve --port' server or "
             "'route' router; its GET /metrics is polled",
    )
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N polls (default: run until ^C)")
    p.add_argument("--auth-token", default=None,
                   help="bearer token for the scraped endpoint")
    p.add_argument("--no-clear", action="store_true",
                   help="append refreshes instead of clearing the screen")

    p = sub.add_parser("distributed", help="distributed plan (and sweep)")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")
    p.add_argument("--opt-level", type=int, default=3, choices=[0, 1, 2, 3])
    p.add_argument("--workers", help="comma-separated counts, e.g. 2,4,8")
    p.add_argument("--tuples-per-worker", type=int, default=100)
    p.add_argument("--sf", type=float, default=0.002)
    p.add_argument("--max-batches", type=int, default=3)

    p = sub.add_parser("advise", help="rank partitioning strategies")
    p.add_argument("query", nargs="?", default="Q3")
    p.add_argument("--sql")

    return parser


_COMMANDS = {
    "list-queries": cmd_list_queries,
    "list-backends": cmd_list_backends,
    "compile": cmd_compile,
    "run": cmd_run,
    "serve": cmd_serve,
    "route": cmd_route,
    "top": cmd_top,
    "distributed": cmd_distributed,
    "advise": cmd_advise,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
