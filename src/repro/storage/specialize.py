"""Automatic index selection (paper §5.2.1).

The compiler's access-pattern analysis records, per materialized view,
which column combinations are used for point lookups (``get``) and
which for index scans (``slice``).  ``build_storage`` turns that into
one :class:`RecordPool` per view: the unique full-key index always
exists (it is how ``update`` finds records), and one non-unique hash
index is created per distinct slice combination.  Views that are only
ever scanned get no secondary indexes at all — matching the paper's
observation that most TPC-H views need zero or one secondary index.
"""

from __future__ import annotations

from repro.compiler.access import AccessPattern, analyze_access_patterns
from repro.compiler.ir import TriggerProgram
from repro.storage.pool import RecordPool, Tracer


def build_storage(
    program: TriggerProgram,
    tracer: Tracer | None = None,
    enable_indexes: bool = True,
) -> dict[str, RecordPool]:
    """Create specialized record pools for every view of a program.

    ``enable_indexes=False`` suppresses all non-unique (slice) indexes
    so slices degrade to full scans — the index-specialization ablation
    of DESIGN.md §8.
    """
    patterns = analyze_access_patterns(program)
    pools: dict[str, RecordPool] = {}
    for info in program.views.values():
        pat = patterns.get(info.name)
        if enable_indexes:
            slice_indexes = _choose_slice_indexes(info.cols, pat)
        else:
            slice_indexes = ()
        pools[info.name] = RecordPool(
            info.cols, slice_indexes=slice_indexes, tracer=tracer
        )
    return pools


def _choose_slice_indexes(
    cols: tuple[str, ...], pat: AccessPattern | None
) -> tuple[tuple[str, ...], ...]:
    if pat is None:
        return ()
    chosen: list[tuple[str, ...]] = []
    for bound in sorted(pat.slices, key=sorted):
        ordered = tuple(c for c in cols if c in bound)
        if ordered and ordered not in chosen:
            chosen.append(ordered)
    return tuple(chosen)
