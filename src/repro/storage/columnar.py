"""Column-oriented batch storage (paper §5.2.2).

Input batches and serialized view contents use a columnar layout: one
Python list per column plus one for multiplicities.  Filtering a simple
static predicate touches a single column, and (de)serialization for the
simulated network is a contiguous per-column copy — the two effects the
paper exploits.  Transformers convert between this layout and the
row-oriented :class:`~repro.ring.GMR` / :class:`RecordPool` formats.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.ring import GMR, is_zero


class ColumnarBatch:
    """A batch of (tuple, multiplicity) pairs stored column-wise."""

    def __init__(self, cols: tuple[str, ...]):
        self.cols = cols
        self.columns: list[list] = [[] for _ in cols]
        self.multiplicities: list[float] = []

    # ------------------------------------------------------------------
    # Construction / conversion (the row<->column transformers)
    # ------------------------------------------------------------------
    @classmethod
    def from_gmr(cls, gmr, cols: tuple[str, ...]) -> "ColumnarBatch":
        """Row-to-column transformer."""
        batch = cls(cols)
        columns = batch.columns
        mults = batch.multiplicities
        for t, m in gmr.items():
            for i, v in enumerate(t):
                columns[i].append(v)
            mults.append(m)
        return batch

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple], cols: tuple[str, ...]
    ) -> "ColumnarBatch":
        batch = cls(cols)
        for row in rows:
            batch.append(row, 1)
        return batch

    def to_gmr(self) -> GMR:
        """Column-to-row transformer (accumulates duplicate keys)."""
        out = GMR()
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            out.add_tuple(tuple(col[i] for col in columns), m)
        return out

    def append(self, row: tuple, multiplicity: float) -> None:
        for i, v in enumerate(row):
            self.columns[i].append(v)
        self.multiplicities.append(multiplicity)

    # ------------------------------------------------------------------
    # Columnar operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.multiplicities)

    def column(self, name: str) -> list:
        return self.columns[self.cols.index(name)]

    def rows(self) -> Iterator[tuple[tuple, float]]:
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            yield tuple(col[i] for col in columns), m

    def filter_column(
        self, name: str, predicate: Callable[[object], bool]
    ) -> "ColumnarBatch":
        """Filter by a single-column predicate — the cache-friendly
        static-condition scan of §5.2.2."""
        idx = self.cols.index(name)
        keep = [
            i for i, v in enumerate(self.columns[idx]) if predicate(v)
        ]
        return self._take(keep, self.cols)

    def project(self, keep_cols: tuple[str, ...]) -> "ColumnarBatch":
        """Keep only ``keep_cols`` (duplicates NOT merged; use
        :meth:`aggregate` to also collapse equal keys)."""
        out = ColumnarBatch(keep_cols)
        for c in keep_cols:
            out.columns[out.cols.index(c)] = list(self.column(c))
        out.multiplicities = list(self.multiplicities)
        return out

    def aggregate(self, keep_cols: tuple[str, ...]) -> "ColumnarBatch":
        """Project and pre-aggregate: the batch preprocessing of §3.3."""
        positions = [self.cols.index(c) for c in keep_cols]
        acc: dict[tuple, float] = {}
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            key = tuple(columns[p][i] for p in positions)
            acc[key] = acc.get(key, 0) + m
        out = ColumnarBatch(keep_cols)
        for key, m in acc.items():
            if not is_zero(m):
                out.append(key, m)
        return out

    def _take(self, indices: list[int], cols: tuple[str, ...]) -> "ColumnarBatch":
        out = ColumnarBatch(cols)
        for ci, c in enumerate(cols):
            src = self.column(c)
            out.columns[ci] = [src[i] for i in indices]
        out.multiplicities = [self.multiplicities[i] for i in indices]
        return out

    # ------------------------------------------------------------------
    # Serialization accounting (for the simulated network)
    # ------------------------------------------------------------------
    def serialized_bytes(self) -> int:
        """Estimated wire size: 8 bytes per numeric cell, actual length
        for strings, plus the multiplicity column."""
        total = 8 * len(self.multiplicities)
        for col in self.columns:
            for v in col:
                total += len(v) if isinstance(v, str) else 8
        return total

    def __repr__(self) -> str:
        return f"ColumnarBatch(cols={self.cols}, n={len(self)})"


def estimate_gmr_bytes(gmr, cols: tuple[str, ...] | None = None) -> int:
    """Wire-size estimate of a GMR without materializing a batch."""
    total = 0
    for t, _ in gmr.items():
        total += 8  # multiplicity
        for v in t:
            total += len(v) if isinstance(v, str) else 8
    return total
