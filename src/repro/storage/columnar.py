"""Column-oriented batch storage (paper §5.2.2) and the shm wire codec.

Input batches and serialized view contents use a columnar layout: one
Python list per column plus one for multiplicities.  Filtering a simple
static predicate touches a single column, and (de)serialization for the
simulated network is a contiguous per-column copy — the two effects the
paper exploits.  Transformers convert between this layout and the
row-oriented :class:`~repro.ring.GMR` / :class:`RecordPool` formats.

:class:`ShmColumnarBlock` is the columnar layout *as bytes*: flat typed
column buffers behind a compact header, designed to be written once
into a ``multiprocessing.shared_memory`` segment so process boundaries
exchange small block descriptors instead of pickled GMRs (the
process-parallel backend's zero-copy data plane).  Column buffers are
``array``-packed int64/float64, utf-8 string blobs behind a uint32
length table, or (for anything else) a pickled column — chosen per
column, so a typed batch never pays object serialization.

``estimate_gmr_bytes`` / ``ColumnarBatch.serialized_bytes`` report the
**actual** encoded size of this wire format (they are computed from the
same per-column sections the encoder emits), so the simulated cluster's
cost model and the coordinator's split heuristics see real wire bytes.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from typing import Callable, Iterator, Sequence

from repro.ring import GMR, is_zero


class ColumnarBatch:
    """A batch of (tuple, multiplicity) pairs stored column-wise."""

    def __init__(self, cols: tuple[str, ...]):
        self.cols = cols
        self.columns: list[list] = [[] for _ in cols]
        self.multiplicities: list[float] = []

    # ------------------------------------------------------------------
    # Construction / conversion (the row<->column transformers)
    # ------------------------------------------------------------------
    @classmethod
    def from_gmr(cls, gmr, cols: tuple[str, ...]) -> "ColumnarBatch":
        """Row-to-column transformer."""
        batch = cls(cols)
        columns = batch.columns
        mults = batch.multiplicities
        for t, m in gmr.items():
            for i, v in enumerate(t):
                columns[i].append(v)
            mults.append(m)
        return batch

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple], cols: tuple[str, ...]
    ) -> "ColumnarBatch":
        batch = cls(cols)
        for row in rows:
            batch.append(row, 1)
        return batch

    def to_gmr(self) -> GMR:
        """Column-to-row transformer (accumulates duplicate keys)."""
        out = GMR()
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            out.add_tuple(tuple(col[i] for col in columns), m)
        return out

    def append(self, row: tuple, multiplicity: float) -> None:
        for i, v in enumerate(row):
            self.columns[i].append(v)
        self.multiplicities.append(multiplicity)

    # ------------------------------------------------------------------
    # Columnar operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.multiplicities)

    def column(self, name: str) -> list:
        return self.columns[self.cols.index(name)]

    def rows(self) -> Iterator[tuple[tuple, float]]:
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            yield tuple(col[i] for col in columns), m

    def filter_column(
        self, name: str, predicate: Callable[[object], bool]
    ) -> "ColumnarBatch":
        """Filter by a single-column predicate — the cache-friendly
        static-condition scan of §5.2.2."""
        idx = self.cols.index(name)
        keep = [
            i for i, v in enumerate(self.columns[idx]) if predicate(v)
        ]
        return self._take(keep, self.cols)

    def project(self, keep_cols: tuple[str, ...]) -> "ColumnarBatch":
        """Keep only ``keep_cols`` (duplicates NOT merged; use
        :meth:`aggregate` to also collapse equal keys)."""
        out = ColumnarBatch(keep_cols)
        for c in keep_cols:
            out.columns[out.cols.index(c)] = list(self.column(c))
        out.multiplicities = list(self.multiplicities)
        return out

    def aggregate(self, keep_cols: tuple[str, ...]) -> "ColumnarBatch":
        """Project and pre-aggregate: the batch preprocessing of §3.3."""
        positions = [self.cols.index(c) for c in keep_cols]
        acc: dict[tuple, float] = {}
        columns = self.columns
        for i, m in enumerate(self.multiplicities):
            key = tuple(columns[p][i] for p in positions)
            acc[key] = acc.get(key, 0) + m
        out = ColumnarBatch(keep_cols)
        for key, m in acc.items():
            if not is_zero(m):
                out.append(key, m)
        return out

    def _take(self, indices: list[int], cols: tuple[str, ...]) -> "ColumnarBatch":
        out = ColumnarBatch(cols)
        for ci, c in enumerate(cols):
            src = self.column(c)
            out.columns[ci] = [src[i] for i in indices]
        out.multiplicities = [self.multiplicities[i] for i in indices]
        return out

    # ------------------------------------------------------------------
    # Serialization accounting (for the simulated network)
    # ------------------------------------------------------------------
    def serialized_bytes(self) -> int:
        """Actual wire size of this batch under the shm columnar codec
        (header + typed column sections + the multiplicity column)."""
        if not self.multiplicities:
            return _BLOCK_HEADER.size
        sections = [_encode_column(tuple(c)) for c in self.columns]
        sections.append(_encode_column(tuple(self.multiplicities)))
        return _sections_nbytes(sections)

    def __repr__(self) -> str:
        return f"ColumnarBatch(cols={self.cols}, n={len(self)})"


def estimate_gmr_bytes(gmr, cols: tuple[str, ...] | None = None) -> int:
    """Wire size of a GMR: the exact byte count of its shm columnar
    encoding (measured, not approximated — the sections are built the
    same way :func:`encode_gmr` builds them)."""
    return encode_gmr(gmr).nbytes


# ----------------------------------------------------------------------
# The shm columnar wire codec
# ----------------------------------------------------------------------
#: header: magic, flags, row count, tuple width (multiplicities excluded)
_BLOCK_HEADER = struct.Struct("<4sBQI")
#: per-section entry: type tag, payload byte length
_COL_HEADER = struct.Struct("<cQ")
_MAGIC = b"SCB1"
#: flag: the block is one pickled (tuple, multiplicity) pair list — the
#: escape hatch for ragged tuple widths, never taken for real relations
_FLAG_PICKLED_PAIRS = 1

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


def _encode_column(values: tuple) -> tuple[bytes, bytes]:
    """Pack one column into ``(tag, payload)``.

    Tags: ``q`` int64, ``d`` float64, ``s`` utf-8 strings behind a
    uint32 *character*-length table, ``o`` pickled column (the fallback
    for mixed/exotic values, int64 overflow, NaN, lone surrogates).
    The float path verifies the packed values round-trip exactly
    (``tolist() ==``), so huge ints never silently lose precision.
    """
    try:
        return b"q", array("q", values).tobytes()
    except (TypeError, OverflowError):
        pass
    try:
        packed = array("d", values)
        if packed.tolist() == list(values):
            return b"d", packed.tobytes()
    except (TypeError, OverflowError):
        pass
    try:
        blob = "".join(values).encode("utf-8")
        lengths = array("I", [len(s) for s in values])
        return b"s", lengths.tobytes() + blob
    except (TypeError, OverflowError, UnicodeEncodeError):
        pass
    return b"o", pickle.dumps(list(values), _PICKLE_PROTO)


def _decode_column(tag: bytes, payload, n_rows: int) -> list:
    if tag == b"q":
        out = array("q")
        out.frombytes(payload)
        return out.tolist()
    if tag == b"d":
        out = array("d")
        out.frombytes(payload)
        return out.tolist()
    if tag == b"s":
        lengths = array("I")
        lengths.frombytes(payload[: 4 * n_rows])
        text = bytes(payload[4 * n_rows:]).decode("utf-8")
        strings = []
        pos = 0
        for n in lengths:
            strings.append(text[pos:pos + n])
            pos += n
        return strings
    if tag == b"o":
        return pickle.loads(payload)
    raise ValueError(f"unknown column tag {tag!r}")


def _sections_nbytes(sections: list[tuple[bytes, bytes]]) -> int:
    total = _BLOCK_HEADER.size + _COL_HEADER.size * len(sections)
    for _, payload in sections:
        total += len(payload)
    return total


class ShmColumnarBlock:
    """One GMR encoded as flat typed column buffers + a compact header.

    Layout (native byte order — blocks never leave the machine)::

        [ magic | flags | n_rows | width ]      block header
        [ tag | payload_len ] * (width + 1)     section table
        [ payload ] * (width + 1)               column buffers
                                                (last section = mults)

    The block is buffer-agnostic: :meth:`write_into` lays it out in any
    writable buffer (a shared-memory segment's ``buf``), and
    :func:`decode_gmr` reads from any readable one, so the same codec
    serves shm segments, inline ``bytes`` (journal replay), and size
    accounting.
    """

    __slots__ = ("n_rows", "width", "flags", "sections")

    def __init__(self, n_rows, width, sections, flags=0):
        self.n_rows = n_rows
        self.width = width
        self.sections = sections
        self.flags = flags

    @property
    def nbytes(self) -> int:
        return _sections_nbytes(self.sections)

    def write_into(self, buf) -> int:
        """Serialize into ``buf`` (writable buffer); returns bytes used."""
        offset = 0
        _BLOCK_HEADER.pack_into(
            buf, offset, _MAGIC, self.flags, self.n_rows, self.width
        )
        offset += _BLOCK_HEADER.size
        for tag, payload in self.sections:
            _COL_HEADER.pack_into(buf, offset, tag, len(payload))
            offset += _COL_HEADER.size
        for _, payload in self.sections:
            end = offset + len(payload)
            buf[offset:end] = payload
            offset = end
        return offset

    def to_bytes(self) -> bytes:
        out = bytearray(self.nbytes)
        self.write_into(out)
        return bytes(out)


def encode_pairs(pairs) -> ShmColumnarBlock:
    """Encode ``(tuple, multiplicity)`` pairs column-wise.

    ``pairs`` must have unique keys (any GMR's items do); decoding
    rebuilds the dict directly from the zipped columns.
    """
    pairs = list(pairs)
    n_rows = len(pairs)
    if n_rows == 0:
        return ShmColumnarBlock(0, 0, [])
    keys, mults = zip(*pairs)
    width = len(keys[0])
    if set(map(len, keys)) != {width}:
        # Ragged widths cannot be laid out column-wise; pickle the lot.
        payload = pickle.dumps(pairs, _PICKLE_PROTO)
        return ShmColumnarBlock(
            n_rows, 0, [(b"o", payload)], _FLAG_PICKLED_PAIRS
        )
    sections = [_encode_column(col) for col in zip(*keys)]
    sections.append(_encode_column(mults))
    return ShmColumnarBlock(n_rows, width, sections)


def encode_gmr(gmr) -> ShmColumnarBlock:
    """Encode a GMR (anything with ``.data``) column-wise."""
    return encode_pairs(gmr.data.items())


def decode_gmr(buf) -> GMR:
    """Decode a :class:`ShmColumnarBlock` buffer back into a GMR.

    Numeric columns come back as int64/float64 — for keys this is
    equality-preserving (``1`` and ``1.0`` hash and compare equal as
    dict keys), and any column where float packing would be lossy was
    encoded via the pickle fallback.
    """
    view = memoryview(buf)
    magic, flags, n_rows, width = _BLOCK_HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad columnar block magic {magic!r}")
    if n_rows == 0:
        return GMR()
    n_sections = 1 if flags & _FLAG_PICKLED_PAIRS else width + 1
    offset = _BLOCK_HEADER.size
    table = []
    for _ in range(n_sections):
        tag, length = _COL_HEADER.unpack_from(view, offset)
        offset += _COL_HEADER.size
        table.append((tag, length))
    payloads = []
    for _, length in table:
        payloads.append(view[offset:offset + length])
        offset += length
    if flags & _FLAG_PICKLED_PAIRS:
        return GMR.unsafe(dict(pickle.loads(payloads[0])))
    columns = [
        _decode_column(tag, payload, n_rows)
        for (tag, _), payload in zip(table, payloads)
    ]
    mults = columns.pop()
    keys = list(zip(*columns)) if width else [()] * n_rows
    return GMR.unsafe(dict(zip(keys, mults)))
