"""Specialized data structures for materialized views (paper §5.2).

* :class:`RecordPool` — the multi-indexed in-memory record pool of
  Figure 6: one pool per materialized view, with a free list for slot
  reuse, a unique hash index for point lookups, and any number of
  non-unique hash indexes for slice operations.
* :class:`ColumnarBatch` — the column-oriented layout used for input
  batches and for serialization in distributed mode (§5.2.2), with
  row/column transformers.
* :func:`build_storage` — automatic index selection from the compiler's
  access-pattern analysis (§5.2.1).
"""

from repro.storage.pool import RecordPool
from repro.storage.columnar import ColumnarBatch
from repro.storage.specialize import build_storage

__all__ = ["RecordPool", "ColumnarBatch", "build_storage"]
