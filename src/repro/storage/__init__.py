"""Specialized data structures for materialized views (paper §5.2).

* :class:`RecordPool` — the multi-indexed in-memory record pool of
  Figure 6: one pool per materialized view, with a free list for slot
  reuse, a unique hash index for point lookups, and any number of
  non-unique hash indexes for slice operations.
* :class:`ColumnarBatch` — the column-oriented layout used for input
  batches and for serialization in distributed mode (§5.2.2), with
  row/column transformers.
* :func:`build_storage` — automatic index selection from the compiler's
  access-pattern analysis (§5.2.1).
* :class:`SegmentPool` / :func:`attach_segment` — ref-counted
  shared-memory segments behind the ``multiproc`` backend's zero-copy
  data plane, with the `ShmColumnarBlock` codec in ``columnar``.
"""

from repro.storage.pool import (
    RecordPool,
    Segment,
    SegmentAttacher,
    SegmentPool,
    attach_segment,
)
from repro.storage.columnar import ColumnarBatch, ShmColumnarBlock
from repro.storage.specialize import build_storage

__all__ = [
    "RecordPool",
    "ColumnarBatch",
    "ShmColumnarBlock",
    "Segment",
    "SegmentAttacher",
    "SegmentPool",
    "attach_segment",
    "build_storage",
]
