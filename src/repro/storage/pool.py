"""Record pools (Figure 6) and the shared-memory segment pool.

:class:`RecordPool` stores the contents of one materialized view:
records of a fixed format (key fields = the view's schema, one value
field = the tuple multiplicity).  Slots freed by deletions are recycled
through a free list.  A unique hash index over the full key serves
``get`` / ``update`` / ``delete``; non-unique hash indexes over column
subsets serve ``slice`` operations, with per-slot membership kept
consistent on every mutation (the paper's index back-references).

Each slot has a stable *virtual address* so a cache simulator can
replay the pool's access trace; pass a ``tracer`` callable taking
``(address, record_bytes)``.

The pool intentionally exposes the same read interface as
:class:`~repro.ring.GMR` (``items``, ``get``, ``__len__``,
``add_inplace``, ``add_tuple``, ``is_zero``, ``data``) so execution
engines can swap pools in wherever a GMR is expected.

:class:`SegmentPool` is the coordinator-side allocator behind the
``multiproc`` backend's shared-memory data plane: ref-counted
power-of-two shared-memory segments, recycled at sync barriers so a
steady-state stream allocates no new segments.  The coordinator
*creates* every segment (workers only attach via
:func:`attach_segment`), which keeps unlink responsibility in exactly
one process — a crashed worker can never leak a segment it owns.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Iterator

from repro.ring.gmr import is_zero as _is_zero

Tracer = Callable[[int, int], None]

#: Spacing between consecutive pools in the synthetic address space,
#: large enough that pools never overlap.
_POOL_ADDRESS_STRIDE = 1 << 32


class RecordPool:
    """A record pool with a unique index and optional slice indexes."""

    _next_base_address = _POOL_ADDRESS_STRIDE

    def __init__(
        self,
        cols: tuple[str, ...],
        slice_indexes: tuple[tuple[str, ...], ...] = (),
        tracer: Tracer | None = None,
    ):
        self.cols = cols
        self.tracer = tracer
        self.record_bytes = 8 * (len(cols) + 1)  # 8-byte fields + value

        # Slot-parallel storage.
        self._keys: list[tuple | None] = []
        self._values: list[float] = []
        self._free: list[int] = []
        self._live = 0

        # Unique hash index: full key -> slot.
        self._unique: dict[tuple, int] = {}

        # Non-unique hash indexes: one per column subset.
        self._slice_cols: list[tuple[str, ...]] = []
        self._slice_positions: list[tuple[int, ...]] = []
        self._slices: list[dict[tuple, set[int]]] = []
        for sc in slice_indexes:
            self.add_slice_index(sc)

        self.base_address = RecordPool._next_base_address
        RecordPool._next_base_address += _POOL_ADDRESS_STRIDE

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def add_slice_index(self, cols: tuple[str, ...]) -> int:
        """Create a non-unique hash index over ``cols``; returns its id."""
        positions = tuple(self.cols.index(c) for c in cols)
        index: dict[tuple, set[int]] = {}
        for slot, key in enumerate(self._keys):
            if key is not None:
                subkey = tuple(key[p] for p in positions)
                index.setdefault(subkey, set()).add(slot)
        self._slice_cols.append(cols)
        self._slice_positions.append(positions)
        self._slices.append(index)
        return len(self._slices) - 1

    def slice_index_for(self, cols: frozenset[str]) -> int | None:
        """Find an index whose column set equals ``cols``."""
        for i, sc in enumerate(self._slice_cols):
            if frozenset(sc) == cols:
                return i
        return None

    @property
    def slice_index_columns(self) -> list[tuple[str, ...]]:
        return list(self._slice_cols)

    # ------------------------------------------------------------------
    # Address bookkeeping / trace
    # ------------------------------------------------------------------
    def _touch(self, slot: int) -> None:
        if self.tracer is not None:
            self.tracer(
                self.base_address + slot * self.record_bytes,
                self.record_bytes,
            )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def upsert(self, key: tuple, delta: float) -> None:
        """Add ``delta`` to the multiplicity of ``key``.

        Inserts the record when absent; deletes it when the
        multiplicity cancels to zero (GMRs never store zeros).
        """
        slot = self._unique.get(key)
        if slot is not None:
            self._touch(slot)
            new = self._values[slot] + delta
            if _is_zero(new):
                self._delete_slot(key, slot)
            else:
                self._values[slot] = new
            return
        if _is_zero(delta):
            return
        slot = self._allocate(key, delta)
        self._touch(slot)

    def delete(self, key: tuple) -> bool:
        """Remove a record outright; returns False when absent."""
        slot = self._unique.get(key)
        if slot is None:
            return False
        self._touch(slot)
        self._delete_slot(key, slot)
        return True

    def clear(self) -> None:
        self._keys.clear()
        self._values.clear()
        self._free.clear()
        self._live = 0
        self._unique.clear()
        for index in self._slices:
            index.clear()

    def _allocate(self, key: tuple, value: float) -> int:
        if self._free:
            slot = self._free.pop()
            self._keys[slot] = key
            self._values[slot] = value
        else:
            slot = len(self._keys)
            self._keys.append(key)
            self._values.append(value)
        self._unique[key] = slot
        for positions, index in zip(self._slice_positions, self._slices):
            subkey = tuple(key[p] for p in positions)
            index.setdefault(subkey, set()).add(slot)
        self._live += 1
        return slot

    def _delete_slot(self, key: tuple, slot: int) -> None:
        del self._unique[key]
        for positions, index in zip(self._slice_positions, self._slices):
            subkey = tuple(key[p] for p in positions)
            bucket = index.get(subkey)
            if bucket is not None:
                bucket.discard(slot)
                if not bucket:
                    del index[subkey]
        self._keys[slot] = None
        self._free.append(slot)
        self._live -= 1

    # ------------------------------------------------------------------
    # Reads (GMR-compatible surface)
    # ------------------------------------------------------------------
    def get(self, key: tuple, default: float = 0) -> float:
        slot = self._unique.get(key)
        if slot is None:
            return default
        self._touch(slot)
        return self._values[slot]

    def __contains__(self, key: tuple) -> bool:
        return key in self._unique

    def __len__(self) -> int:
        return self._live

    def is_zero(self) -> bool:
        return self._live == 0

    def items(self) -> Iterator[tuple[tuple, float]]:
        """Scan every live record (a ``foreach``)."""
        keys = self._keys
        values = self._values
        for slot, key in enumerate(keys):
            if key is not None:
                self._touch(slot)
                yield key, values[slot]

    def slice(self, index_id: int, subkey: tuple) -> Iterator[tuple[tuple, float]]:
        """Iterate records matching ``subkey`` through a slice index."""
        bucket = self._slices[index_id].get(subkey)
        if not bucket:
            return
        keys = self._keys
        values = self._values
        for slot in list(bucket):
            self._touch(slot)
            yield keys[slot], values[slot]

    @property
    def data(self) -> dict[tuple, float]:
        """A dict snapshot (GMR compatibility; O(n))."""
        return {
            k: self._values[s] for k, s in self._unique.items()
        }

    def project(self, positions):
        """GMR-compatible multiplicity-preserving projection."""
        from repro.ring import GMR

        out = GMR()
        for key, value in self.items():
            out.add_tuple(tuple(key[i] for i in positions), value)
        return out

    def exists(self):
        """GMR-compatible Exists: every live record at multiplicity 1."""
        from repro.ring import GMR

        return GMR.unsafe({k: 1 for k, _ in self.items()})

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def add_inplace(self, other) -> None:
        """Merge a GMR (or anything with ``items()``) into the pool."""
        for key, delta in other.items():
            self.upsert(key, delta)

    def add_tuple(self, key: tuple, delta: float) -> None:
        self.upsert(key, delta)

    def replace_contents(self, other) -> None:
        self.clear()
        self.add_inplace(other)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def capacity(self) -> int:
        """Allocated slots, live or free (the pool's memory footprint)."""
        return len(self._keys)

    def free_slots(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:
        return (
            f"RecordPool(cols={self.cols}, live={self._live}, "
            f"capacity={self.capacity()}, "
            f"slice_indexes={self._slice_cols})"
        )


# ----------------------------------------------------------------------
# Shared-memory segments (the multiproc data plane)
# ----------------------------------------------------------------------

#: Smallest segment ever allocated; requests round up to a power of two
#: so recycled segments fit the next similarly-sized payload.
_MIN_SEGMENT_BYTES = 4096


def _size_class(nbytes: int) -> int:
    size = _MIN_SEGMENT_BYTES
    while size < nbytes:
        size <<= 1
    return size


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment created by another process, without adding a
    second tracking claim on it.

    Workers share the coordinator's ``resource_tracker`` process (fork
    inherits it; spawn passes its fd), and the coordinator registered
    the segment at creation.  Python 3.13 lets an attach opt out via
    ``track=False``; on earlier versions the attach re-registers, which
    is a harmless duplicate in the shared tracker's name set — but it
    must NOT be "fixed" with ``unregister``, which would delete the
    coordinator's claim and break its eventual ``unlink``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


class Segment:
    """One shared-memory block plus its pool bookkeeping.

    ``refs`` counts outstanding readers the coordinator has promised
    the block to (one per worker for a broadcast, one for a targeted
    send).  ``generation`` increments on every reuse, so a descriptor
    built for a previous tenancy of the same name is detectably stale.
    """

    __slots__ = ("shm", "capacity", "refs", "generation")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int):
        self.shm = shm
        self.capacity = capacity
        self.refs = 0
        self.generation = 0

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def __repr__(self) -> str:
        return (
            f"Segment({self.name}, cap={self.capacity}, "
            f"refs={self.refs}, gen={self.generation})"
        )


class SegmentPool:
    """Ref-counted pool of coordinator-owned shared-memory segments.

    Lifecycle of one payload::

        seg = pool.acquire(nbytes, refs=k)   # alloc (or recycle)
        block.write_into(seg.buf)            # lay the bytes out once
        ... send (seg.name, ...) to k workers ...
        pool.release(seg.name)  * k          # after each consumption
        # refs == 0  ->  segment returns to the free list
        pool.close()                         # close + unlink everything

    Segment names are ``repro{pid}x{poolid}x{n}`` — short enough for
    the POSIX 31-character limit and grep-able (a leak check is
    ``ls /dev/shm | grep '^repro'``).
    """

    _next_pool_id = 0

    def __init__(self):
        # The shared resource tracker must exist *before* workers fork.
        # Attaching registers a claim (pre-3.13), and a worker forked
        # with no tracker fd to inherit spawns a private one — which
        # unlinks every segment that worker ever attached the moment
        # the worker exits (or is killed), out from under the pool.
        # The pool is always constructed before the coordinator spawns
        # workers, so starting the tracker here pins one shared tracker
        # for the whole process tree.
        resource_tracker.ensure_running()
        self._pool_id = SegmentPool._next_pool_id
        SegmentPool._next_pool_id += 1
        self._counter = 0
        self._segments: dict[str, Segment] = {}  # every live segment
        self._free: dict[int, list[Segment]] = {}  # capacity -> LIFO
        self._inflight: dict[str, Segment] = {}
        self._closed = False
        self.created = 0  # segments ever allocated
        self.recycled = 0  # acquisitions served from the free list

    # ------------------------------------------------------------------
    def acquire(self, nbytes: int, refs: int = 1) -> Segment:
        """Hand out a segment with capacity >= ``nbytes`` and ``refs``
        outstanding consumptions."""
        if self._closed:
            raise ValueError("SegmentPool is closed")
        capacity = _size_class(nbytes)
        stack = self._free.get(capacity)
        if stack:
            seg = stack.pop()
            self.recycled += 1
        else:
            name = f"repro{os.getpid()}x{self._pool_id}x{self._counter}"
            self._counter += 1
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=capacity
            )
            seg = Segment(shm, capacity)
            self._segments[seg.name] = seg
            self.created += 1
        seg.refs = refs
        seg.generation += 1
        self._inflight[seg.name] = seg
        return seg

    def retain(self, name: str, n: int = 1) -> None:
        """Promise the segment to ``n`` more readers."""
        self._inflight[name].refs += n

    def release(self, name: str, n: int = 1) -> None:
        """Record ``n`` consumptions; recycle the segment at zero."""
        seg = self._inflight.get(name)
        if seg is None:
            return  # already recycled (or pool reset after a failure)
        seg.refs -= n
        if seg.refs <= 0:
            del self._inflight[name]
            self._free.setdefault(seg.capacity, []).append(seg)

    def release_all_inflight(self) -> None:
        """Recycle every outstanding segment, whatever its refcount.

        Sound only at a sync barrier (all workers have drained their
        pipes, so no descriptor is still awaiting a read) or after a
        failure when surviving workers have been resynced.
        """
        for seg in list(self._inflight.values()):
            seg.refs = 0
            del self._inflight[seg.name]
            self._free.setdefault(seg.capacity, []).append(seg)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment this pool ever created."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            try:
                seg.shm.close()
            except Exception:
                pass
            try:
                seg.shm.unlink()
            except FileNotFoundError:
                # Unlinked externally.  ``unlink`` bails before dropping
                # our tracker claim, so drop it here — otherwise the
                # tracker reports a phantom leak at process shutdown.
                try:
                    resource_tracker.unregister(
                        seg.shm._name, "shared_memory"
                    )
                except Exception:
                    pass
            except Exception:
                pass
        self._segments.clear()
        self._free.clear()
        self._inflight.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict[str, int]:
        return {
            "created": self.created,
            "recycled": self.recycled,
            "live": len(self._segments),
            "inflight": len(self._inflight),
            "free": sum(len(s) for s in self._free.values()),
            "bytes": sum(s.capacity for s in self._segments.values()),
        }

    def __repr__(self) -> str:
        return f"SegmentPool({self.stats()})"


class SegmentAttacher:
    """Worker-side cache of attached segments, keyed by name.

    Attaching is a syscall + mmap; a steady-state stream reuses the
    same few pool segments, so caching makes repeat descriptors free.
    The coordinator never unlinks a segment while any descriptor naming
    it can still arrive (unlink happens only at pool close, after
    workers stop), so cached attachments cannot go stale mid-stream.
    """

    def __init__(self):
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        shm = self._attached.get(name)
        if shm is None:
            shm = attach_segment(name)
            self._attached[name] = shm
        return shm

    def close(self) -> None:
        for shm in self._attached.values():
            try:
                shm.close()
            except Exception:
                pass
        self._attached.clear()
