"""The multi-indexed record pool of Figure 6.

One pool stores the contents of one materialized view: records of a
fixed format (key fields = the view's schema, one value field = the
tuple multiplicity).  Slots freed by deletions are recycled through a
free list.  A unique hash index over the full key serves ``get`` /
``update`` / ``delete``; non-unique hash indexes over column subsets
serve ``slice`` operations, with per-slot membership kept consistent on
every mutation (the paper's index back-references).

Each slot has a stable *virtual address* so a cache simulator can
replay the pool's access trace; pass a ``tracer`` callable taking
``(address, record_bytes)``.

The pool intentionally exposes the same read interface as
:class:`~repro.ring.GMR` (``items``, ``get``, ``__len__``,
``add_inplace``, ``add_tuple``, ``is_zero``, ``data``) so execution
engines can swap pools in wherever a GMR is expected.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.ring.gmr import is_zero as _is_zero

Tracer = Callable[[int, int], None]

#: Spacing between consecutive pools in the synthetic address space,
#: large enough that pools never overlap.
_POOL_ADDRESS_STRIDE = 1 << 32


class RecordPool:
    """A record pool with a unique index and optional slice indexes."""

    _next_base_address = _POOL_ADDRESS_STRIDE

    def __init__(
        self,
        cols: tuple[str, ...],
        slice_indexes: tuple[tuple[str, ...], ...] = (),
        tracer: Tracer | None = None,
    ):
        self.cols = cols
        self.tracer = tracer
        self.record_bytes = 8 * (len(cols) + 1)  # 8-byte fields + value

        # Slot-parallel storage.
        self._keys: list[tuple | None] = []
        self._values: list[float] = []
        self._free: list[int] = []
        self._live = 0

        # Unique hash index: full key -> slot.
        self._unique: dict[tuple, int] = {}

        # Non-unique hash indexes: one per column subset.
        self._slice_cols: list[tuple[str, ...]] = []
        self._slice_positions: list[tuple[int, ...]] = []
        self._slices: list[dict[tuple, set[int]]] = []
        for sc in slice_indexes:
            self.add_slice_index(sc)

        self.base_address = RecordPool._next_base_address
        RecordPool._next_base_address += _POOL_ADDRESS_STRIDE

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def add_slice_index(self, cols: tuple[str, ...]) -> int:
        """Create a non-unique hash index over ``cols``; returns its id."""
        positions = tuple(self.cols.index(c) for c in cols)
        index: dict[tuple, set[int]] = {}
        for slot, key in enumerate(self._keys):
            if key is not None:
                subkey = tuple(key[p] for p in positions)
                index.setdefault(subkey, set()).add(slot)
        self._slice_cols.append(cols)
        self._slice_positions.append(positions)
        self._slices.append(index)
        return len(self._slices) - 1

    def slice_index_for(self, cols: frozenset[str]) -> int | None:
        """Find an index whose column set equals ``cols``."""
        for i, sc in enumerate(self._slice_cols):
            if frozenset(sc) == cols:
                return i
        return None

    @property
    def slice_index_columns(self) -> list[tuple[str, ...]]:
        return list(self._slice_cols)

    # ------------------------------------------------------------------
    # Address bookkeeping / trace
    # ------------------------------------------------------------------
    def _touch(self, slot: int) -> None:
        if self.tracer is not None:
            self.tracer(
                self.base_address + slot * self.record_bytes,
                self.record_bytes,
            )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def upsert(self, key: tuple, delta: float) -> None:
        """Add ``delta`` to the multiplicity of ``key``.

        Inserts the record when absent; deletes it when the
        multiplicity cancels to zero (GMRs never store zeros).
        """
        slot = self._unique.get(key)
        if slot is not None:
            self._touch(slot)
            new = self._values[slot] + delta
            if _is_zero(new):
                self._delete_slot(key, slot)
            else:
                self._values[slot] = new
            return
        if _is_zero(delta):
            return
        slot = self._allocate(key, delta)
        self._touch(slot)

    def delete(self, key: tuple) -> bool:
        """Remove a record outright; returns False when absent."""
        slot = self._unique.get(key)
        if slot is None:
            return False
        self._touch(slot)
        self._delete_slot(key, slot)
        return True

    def clear(self) -> None:
        self._keys.clear()
        self._values.clear()
        self._free.clear()
        self._live = 0
        self._unique.clear()
        for index in self._slices:
            index.clear()

    def _allocate(self, key: tuple, value: float) -> int:
        if self._free:
            slot = self._free.pop()
            self._keys[slot] = key
            self._values[slot] = value
        else:
            slot = len(self._keys)
            self._keys.append(key)
            self._values.append(value)
        self._unique[key] = slot
        for positions, index in zip(self._slice_positions, self._slices):
            subkey = tuple(key[p] for p in positions)
            index.setdefault(subkey, set()).add(slot)
        self._live += 1
        return slot

    def _delete_slot(self, key: tuple, slot: int) -> None:
        del self._unique[key]
        for positions, index in zip(self._slice_positions, self._slices):
            subkey = tuple(key[p] for p in positions)
            bucket = index.get(subkey)
            if bucket is not None:
                bucket.discard(slot)
                if not bucket:
                    del index[subkey]
        self._keys[slot] = None
        self._free.append(slot)
        self._live -= 1

    # ------------------------------------------------------------------
    # Reads (GMR-compatible surface)
    # ------------------------------------------------------------------
    def get(self, key: tuple, default: float = 0) -> float:
        slot = self._unique.get(key)
        if slot is None:
            return default
        self._touch(slot)
        return self._values[slot]

    def __contains__(self, key: tuple) -> bool:
        return key in self._unique

    def __len__(self) -> int:
        return self._live

    def is_zero(self) -> bool:
        return self._live == 0

    def items(self) -> Iterator[tuple[tuple, float]]:
        """Scan every live record (a ``foreach``)."""
        keys = self._keys
        values = self._values
        for slot, key in enumerate(keys):
            if key is not None:
                self._touch(slot)
                yield key, values[slot]

    def slice(self, index_id: int, subkey: tuple) -> Iterator[tuple[tuple, float]]:
        """Iterate records matching ``subkey`` through a slice index."""
        bucket = self._slices[index_id].get(subkey)
        if not bucket:
            return
        keys = self._keys
        values = self._values
        for slot in list(bucket):
            self._touch(slot)
            yield keys[slot], values[slot]

    @property
    def data(self) -> dict[tuple, float]:
        """A dict snapshot (GMR compatibility; O(n))."""
        return {
            k: self._values[s] for k, s in self._unique.items()
        }

    def project(self, positions):
        """GMR-compatible multiplicity-preserving projection."""
        from repro.ring import GMR

        out = GMR()
        for key, value in self.items():
            out.add_tuple(tuple(key[i] for i in positions), value)
        return out

    def exists(self):
        """GMR-compatible Exists: every live record at multiplicity 1."""
        from repro.ring import GMR

        return GMR.unsafe({k: 1 for k, _ in self.items()})

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def add_inplace(self, other) -> None:
        """Merge a GMR (or anything with ``items()``) into the pool."""
        for key, delta in other.items():
            self.upsert(key, delta)

    def add_tuple(self, key: tuple, delta: float) -> None:
        self.upsert(key, delta)

    def replace_contents(self, other) -> None:
        self.clear()
        self.add_inplace(other)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def capacity(self) -> int:
        """Allocated slots, live or free (the pool's memory footprint)."""
        return len(self._keys)

    def free_slots(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:
        return (
            f"RecordPool(cols={self.cols}, live={self._live}, "
            f"capacity={self.capacity()}, "
            f"slice_indexes={self._slice_cols})"
        )
