"""Process-parallel execution: real multiprocessing workers.

The scale-out backend the ROADMAP promised: a coordinator process
partitions base relations with the distributed compiler's hash/
co-partitioning tags, spawns N OS worker processes that each rebuild
the compiled pipelines locally from a picklable
:class:`~repro.parallel.protocol.WorkerTask`, routes every update
batch's blocks to the workers, and merges worker snapshots.  Registered
in the backend registry as ``multiproc``;
:class:`~repro.distributed.SimulatedCluster` is its semantic oracle.
"""

from repro.parallel.coordinator import MultiprocBackend, WorkerHandle
from repro.parallel.protocol import WorkerTask, program_fingerprint
from repro.parallel.supervisor import WorkerJournal, WorkerSupervisor

__all__ = [
    "MultiprocBackend",
    "WorkerHandle",
    "WorkerJournal",
    "WorkerSupervisor",
    "WorkerTask",
    "program_fingerprint",
]
