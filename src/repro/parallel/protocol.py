"""The coordinator/worker wire protocol of the process-parallel backend.

Everything that crosses a pipe is a small plain picklable value: query
specs, command tuples, and *payload descriptors*.  Compiled closure
pipelines never travel — each worker rebuilds them locally from the
:class:`WorkerTask` it receives at startup (see ARCHITECTURE.md,
"Process-parallel backend").

Payloads
--------
GMR contents move in one of four tagged forms, chosen by the
coordinator's ``data_plane``:

``("g", gmr)``
    The pickle data plane: the GMR itself, pickled by ``Connection``.
``("s", name, nbytes, generation)``
    The shm data plane: a *descriptor* of a shared-memory segment the
    coordinator owns.  The segment holds ``nbytes`` of
    :class:`~repro.storage.columnar.ShmColumnarBlock` encoding (the
    block header carries row count and tuple width); ``generation``
    distinguishes successive tenancies of a recycled segment.
``("b", bytes)``
    Inline codec bytes: the overflow fallback when a reply outgrows its
    pre-sized segment, and the form journal replay uses (replayed
    payloads must not depend on segments that may have been recycled).
``("e",)``
    The empty GMR (common enough to shortcut).

Replying commands that return GMRs (``read``, ``view``) carry a *reply
spec*: ``None`` (reply inline as ``("g", gmr)``) or
``("s", name, capacity)`` naming a coordinator-created segment the
worker should encode into, replying ``("s", name, nbytes)`` — or
``("b", bytes)`` when the encoding exceeds ``capacity``.

Commands (coordinator -> worker).  Only ``block``, ``read``, ``view``,
``dump``, ``sync``, and ``stop`` answer with exactly one reply; the
pure writes (``install``, ``delta``, ``store``, ``clear``, ``reset``)
are silent, which is what lets the coordinator pipeline a batch of
commands and drain replies only at data dependencies:

``("install", name, payload)``
    Install one partition of a materialized view (initialization and
    journal replay).
``("delta", relation, payload)``
    Stage this worker's share of an update batch.
``("block", relation, block_index)``
    Execute one distributed block of ``relation``'s trigger against the
    worker's partitions; the reply carries the worker's per-block
    operation counters.
``("read", name, is_delta, reply_spec)``
    Return the worker's partition of a view or staged delta (the data
    half of a Repart/Gather).
``("store", target, op, scope, payload)``
    Install moved contents under statement-store semantics (the data
    half of a Scatter/Repart).
``("view", name, reply_spec)``
    Return the worker's partition of a materialized view (snapshots).
``("clear",)``
    Drop staged deltas at the end of a batch.
``("dump",)``
    Return every view partition (``{name: GMR}``, always inline — dumps
    are rare checkpoints, not the fast path).
``("reset",)``
    Drop all views and deltas (precedes a journal replay).
``("stop",)``
    Acknowledge and exit the worker loop.

Replies are ``("ok", payload)`` or ``("err", formatted_traceback)``;
the coordinator converts ``err`` replies — and silence past a deadline
— into worker-failure handling: restart + journal replay while the
supervisor's restart budget lasts, a poisoning
:class:`~repro.exec.BackendError` after.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.ring import GMR
from repro.storage.columnar import decode_gmr, encode_gmr
from repro.workloads.spec import QuerySpec


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker needs to rebuild its execution state.

    The task is the *only* startup payload: the worker re-runs the
    distributed compiler on ``spec`` (deterministic, so every process
    derives the identical block structure) and lowers its own compiled
    pipelines.  ``fingerprint`` is the coordinator's program digest; a
    worker that compiles a different program refuses to serve rather
    than silently diverge.
    """

    spec: QuerySpec
    opt_level: int
    n_workers: int
    index: int
    use_compiled: bool
    fingerprint: str


def program_fingerprint(program) -> str:
    """Digest of a distributed program's full structure.

    ``describe()`` covers partitioning tags, trigger statements, and
    fused block boundaries — everything the coordinator and the workers
    must agree on for block indices to mean the same thing everywhere.
    """
    return hashlib.sha256(program.describe().encode()).hexdigest()


# ----------------------------------------------------------------------
# Payload forms
# ----------------------------------------------------------------------
def decode_payload(payload, attacher) -> GMR:
    """Materialize a payload on the worker side.

    ``attacher`` is the worker's
    :class:`~repro.storage.pool.SegmentAttacher`; segment descriptors
    resolve through it so repeat descriptors for a recycled segment
    reuse the existing mapping.
    """
    kind = payload[0]
    if kind == "g":
        return payload[1]
    if kind == "e":
        return GMR()
    if kind == "b":
        return decode_gmr(payload[1])
    if kind == "s":
        _, name, nbytes, _generation = payload
        return decode_gmr(attacher.get(name).buf[:nbytes])
    raise ValueError(f"unknown payload form {kind!r}")


def encode_reply(gmr: GMR, reply_spec, attacher):
    """Build a replying command's GMR payload per its reply spec."""
    if reply_spec is None:
        return ("g", gmr)
    if gmr.is_zero():
        return ("e",)
    block = encode_gmr(gmr)
    _, name, capacity = reply_spec
    if block.nbytes > capacity:
        return ("b", block.to_bytes())
    block.write_into(attacher.get(name).buf)
    return ("s", name, block.nbytes)
