"""The coordinator/worker wire protocol of the process-parallel backend.

Everything that crosses a pipe is a plain picklable value: query specs,
GMRs, and small command tuples.  Compiled closure pipelines never
travel — each worker rebuilds them locally from the
:class:`WorkerTask` it receives at startup (see ARCHITECTURE.md,
"Process-parallel backend").

Commands (coordinator -> worker).  Only ``block``, ``read``, ``view``,
``sync``, and ``stop`` answer with exactly one reply; the pure writes
(``install``, ``delta``, ``store``, ``clear``) are silent, which is
what lets the coordinator pipeline a batch of commands and drain
replies only at data dependencies:

``("install", name, gmr)``
    Install one partition of a materialized view (initialization).
``("delta", relation, gmr)``
    Stage this worker's share of an update batch.
``("block", relation, block_index)``
    Execute one distributed block of ``relation``'s trigger against the
    worker's partitions; the reply carries the worker's per-block
    operation counters.
``("read", name, is_delta)``
    Return the worker's partition of a view or staged delta (the data
    half of a Repart/Gather).
``("store", target, op, scope, gmr)``
    Install moved contents under statement-store semantics (the data
    half of a Scatter/Repart).
``("view", name)``
    Return the worker's partition of a materialized view (snapshots).
``("clear",)``
    Drop staged deltas at the end of a batch.
``("stop",)``
    Acknowledge and exit the worker loop.

Replies are ``("ok", payload)`` or ``("err", formatted_traceback)``;
the coordinator converts ``err`` replies — and silence past a deadline
— into :class:`~repro.exec.BackendError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.workloads.spec import QuerySpec


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker needs to rebuild its execution state.

    The task is the *only* startup payload: the worker re-runs the
    distributed compiler on ``spec`` (deterministic, so every process
    derives the identical block structure) and lowers its own compiled
    pipelines.  ``fingerprint`` is the coordinator's program digest; a
    worker that compiles a different program refuses to serve rather
    than silently diverge.
    """

    spec: QuerySpec
    opt_level: int
    n_workers: int
    index: int
    use_compiled: bool
    fingerprint: str


def program_fingerprint(program) -> str:
    """Digest of a distributed program's full structure.

    ``describe()`` covers partitioning tags, trigger statements, and
    fused block boundaries — everything the coordinator and the workers
    must agree on for block indices to mean the same thing everywhere.
    """
    return hashlib.sha256(program.describe().encode()).hexdigest()
