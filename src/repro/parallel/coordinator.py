"""The process-parallel execution backend (real OS processes).

:class:`MultiprocBackend` is the `multiproc` entry in the backend
registry: the scale-out counterpart of
:class:`~repro.distributed.SimulatedCluster`, which stays the semantic
oracle — both execute the identical
:class:`~repro.distributed.DistributedProgram`, so their snapshots must
match batch for batch (the differential test in
``tests/test_multiproc_backend.py`` asserts exactly that).

Topology is a star: the coordinator plays the driver (local blocks,
every location transformer) and N daemon worker processes each hold one
hash partition of every Dist-tagged view.  Per batch:

1. the batch is split round-robin and each worker's share staged as its
   delta (worker-side ingestion, paper §6.2);
2. blocks execute in fused order — distributed blocks are broadcast as
   ``("block", relation, i)`` commands and run *concurrently* across
   workers; local blocks run on the coordinator, with Scatter/Repart/
   Gather performing real data movement over the pipes;
3. staged deltas are cleared everywhere and one sync barrier confirms
   the batch landed on every worker.

The protocol is *pipelined*: pure-write commands (``delta``,
``store``, ``install``, ``clear``) are posted without waiting for
acknowledgements, and the coordinator only drains replies at genuine
data dependencies — a block's counters, a Gather/Repart collect, the
end-of-batch sync.  Workers execute their pipe strictly in order, so
pipelining never reorders effects; it only removes round-trip stalls
(which dominate on oversubscribed machines, where every pipe wait is a
context switch).

Only picklable values cross a pipe (specs, GMRs, command tuples);
compiled closure pipelines are rebuilt per worker from the
:class:`~repro.parallel.protocol.WorkerTask`.  Worker failures surface
as :class:`~repro.exec.BackendError` at the coordinator: every reply
wait polls the worker's liveness and a hard deadline, so a died or
wedged process fails the batch quickly instead of hanging the session.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
import weakref
from collections import deque
from dataclasses import dataclass, field

from repro.compiler.plancache import compile_program
from repro.distributed import compile_distributed
from repro.distributed.partitioning import (
    hash_partition,
    round_robin_partition,
)
from repro.distributed.program import apply_store, ref_cols as _ref_cols
from repro.distributed.tags import Dist, Local, Replicated, Tag
from repro.eval import CompiledEvaluator, Database, Evaluator
from repro.exec.backend import BackendError, ExecutionBackend
from repro.metrics import Counters
from repro.parallel.protocol import WorkerTask, program_fingerprint
from repro.parallel.worker import worker_main
from repro.query.ast import DeltaRel, Expr, Gather, Rel, Repart, Scatter
from repro.ring import GMR
from repro.workloads.spec import QuerySpec


@dataclass
class WorkerHandle:
    """One spawned worker: its process and the coordinator's pipe end."""

    index: int
    process: mp.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection


@dataclass
class ParallelMetrics:
    """Per-run accounting of the process-parallel backend.

    ``wall_s`` is measured wall-clock per batch.  ``scaleout_s`` is the
    *critical-path* latency estimate: wall time minus the
    oversubscription penalty of every distributed block —
    ``max(0, block_wall - max(max_busy, block_wall - (sum_busy -
    max_busy)))`` — where each worker self-reports its CPU time
    (``busy``) for the block.  On a machine with at least ``n_workers``
    free cores the penalty vanishes (workers genuinely overlap and
    ``block_wall`` already reflects it); on an oversubscribed box — a
    1-core CI runner — the OS serializes the workers, and the estimate
    reconstructs the latency a real scale-out deployment would see,
    clamped so a block is never modeled faster than its slowest
    worker's own compute.
    """

    batches: int = 0
    wall_s: list = field(default_factory=list)
    scaleout_s: list = field(default_factory=list)
    #: total busy CPU seconds per worker index (load-balance diagnostics)
    worker_busy_s: list = field(default_factory=list)

    @property
    def total_wall_s(self) -> float:
        return sum(self.wall_s)

    @property
    def total_scaleout_s(self) -> float:
        return sum(self.scaleout_s)

    def balance(self) -> float:
        """max/mean worker busy time (1.0 = perfectly balanced).

        Idle workers count toward the mean — a worker that received no
        work at all is the worst imbalance, not a rounding artifact.
        """
        busy = self.worker_busy_s
        if not busy or not any(b > 0 for b in busy):
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


def _default_start_method() -> str:
    # fork is an order of magnitude cheaper to start and the tests spin
    # up many short-lived backends, but it is only safe where CPython
    # itself still defaults to it (Linux); macOS switched to spawn
    # because forking a process that has used threads/frameworks can
    # deadlock (bpo-33725), and Windows never had fork.
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _shutdown_workers(handles: list[WorkerHandle]) -> None:
    """GC/exit-time cleanup; must not reference the backend object."""
    for h in handles:
        try:
            h.conn.close()
        except OSError:
            pass
    deadline = time.monotonic() + 1.0
    for h in handles:
        h.process.join(max(0.0, deadline - time.monotonic()))
    for h in handles:
        if h.process.is_alive():
            h.process.terminate()


class MultiprocBackend(ExecutionBackend):
    """Executes a distributed maintenance program across OS processes."""

    def __init__(
        self,
        spec: QuerySpec,
        n_workers: int = 2,
        opt_level: int = 3,
        use_compiled: bool = True,
        counters: Counters | None = None,
        reply_timeout_s: float = 120.0,
        start_method: str | None = None,
    ):
        if n_workers < 1:
            raise ValueError("multiproc backend needs at least one worker")
        self.spec = spec
        self.n_workers = n_workers
        self.use_compiled = use_compiled
        self.reply_timeout_s = reply_timeout_s
        self.counters = counters if counters is not None else Counters()
        self.program = compile_distributed(
            spec.query,
            name=spec.name,
            key_hints=spec.key_hints,
            updatable=spec.updatable,
            opt_level=opt_level,
        )
        fingerprint = program_fingerprint(self.program)

        self.driver = Database()
        self.plans = compile_program(self.program) if use_compiled else None
        self.batches_processed = 0
        self.metrics = ParallelMetrics(worker_busy_s=[0.0] * n_workers)
        self._failed: str | None = None
        self._closed = False
        self._pending: list[deque] = [deque() for _ in range(n_workers)]

        ctx = mp.get_context(start_method or _default_start_method())
        handles: list[WorkerHandle] = []
        try:
            for i in range(n_workers):
                parent_conn, child_conn = ctx.Pipe()
                task = WorkerTask(
                    spec=spec,
                    opt_level=opt_level,
                    n_workers=n_workers,
                    index=i,
                    use_compiled=use_compiled,
                    fingerprint=fingerprint,
                )
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, task),
                    name=f"repro-{spec.name}-worker-{i}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                handles.append(WorkerHandle(i, proc, parent_conn))
            self._handles = handles
            # Ready handshake: workers compile concurrently; collecting
            # after all have started surfaces compile errors up front.
            for h in handles:
                self._recv(h)
        except BaseException:
            _shutdown_workers(handles)
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, list(handles)
        )

    # ------------------------------------------------------------------
    # Pipe plumbing (pipelined request/reply)
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> BackendError:
        self._failed = message
        return BackendError(message)

    def _check_usable(self) -> None:
        if self._closed:
            raise BackendError(
                f"multiproc backend for {self.spec.name!r} is closed"
            )
        if self._failed is not None:
            raise BackendError(
                f"multiproc backend for {self.spec.name!r} already failed: "
                f"{self._failed}"
            )

    def _post(self, handle: WorkerHandle, msg: tuple) -> None:
        """Send a pure-write command; the worker will not reply."""
        try:
            handle.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise self._fail(
                f"worker {handle.index} (pid {handle.process.pid}) is gone: "
                f"cannot send {msg[0]!r} command ({exc})"
            ) from exc

    def _ask(self, handle: WorkerHandle, msg: tuple) -> list:
        """Send a command that produces a reply; returns a slot that
        :meth:`_drain` fills with the payload."""
        self._post(handle, msg)
        slot: list = []
        self._pending[handle.index].append(slot)
        return slot

    def _drain(self) -> None:
        """Collect every outstanding reply, in per-worker pipe order."""
        for h in self._handles:
            q = self._pending[h.index]
            while q:
                slot = q.popleft()
                slot.append(self._recv(h))

    def _sync(self) -> None:
        """Barrier: every worker has applied all posted commands."""
        for h in self._handles:
            self._ask(h, ("sync",))
        self._drain()

    def _recv(self, handle: WorkerHandle):
        deadline = time.monotonic() + self.reply_timeout_s
        while True:
            try:
                if handle.conn.poll(0.05):
                    break
            except (BrokenPipeError, OSError) as exc:
                raise self._fail(
                    f"worker {handle.index} pipe failed: {exc}"
                ) from exc
            if not handle.process.is_alive():
                raise self._fail(
                    f"worker {handle.index} (pid {handle.process.pid}) died "
                    f"mid-batch (exit code {handle.process.exitcode})"
                )
            if time.monotonic() > deadline:
                raise self._fail(
                    f"worker {handle.index} (pid {handle.process.pid}) did "
                    f"not reply within {self.reply_timeout_s}s"
                )
        try:
            status, payload = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise self._fail(
                f"worker {handle.index} closed its pipe mid-reply ({exc})"
            ) from exc
        if status == "err":
            raise self._fail(
                f"worker {handle.index} raised while serving:\n{payload}"
            )
        return payload

    # ------------------------------------------------------------------
    # Placement helpers (shared semantics with SimulatedCluster)
    # ------------------------------------------------------------------
    def _tag(self, name: str) -> Tag:
        return self.program.partitioning.get(name, Local())

    def _partition(self, contents: GMR, cols, keys) -> list[GMR]:
        return hash_partition(contents, cols, keys, self.n_workers)

    def _round_robin(self, batch: GMR) -> list[GMR]:
        return round_robin_partition(batch, self.n_workers)

    def _evaluator(self, counters: Counters):
        if self.use_compiled:
            return CompiledEvaluator(self.driver, counters, plans=self.plans)
        return Evaluator(self.driver, counters)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        """Compute every view from ``base`` and install it by tag."""
        self._check_usable()
        evaluator = Evaluator(base)
        for info in self.program.local_program.views.values():
            contents = evaluator.evaluate(info.definition)
            if contents.is_zero():
                continue
            tag = self.program.partitioning.get(info.name)
            if isinstance(tag, Dist):
                parts = self._partition(contents, list(info.cols), tag.keys)
                for h, part in zip(self._handles, parts):
                    self._post(h, ("install", info.name, part))
            elif isinstance(tag, Replicated):
                # No defensive copy: send() pickles, so every worker
                # already receives an independent GMR.
                for h in self._handles:
                    self._post(h, ("install", info.name, contents))
            else:
                self.driver.set_view(info.name, contents)
        self._sync()

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def on_batch(self, relation: str, batch: GMR) -> None:
        """Route one update batch through the coordinator and workers."""
        self._check_usable()
        trig = self.program.triggers.get(relation)
        if trig is None:
            raise KeyError(f"no trigger for relation {relation!r}")

        start = time.perf_counter()
        oversubscription_s = 0.0

        # Worker-side ingestion: each worker receives its share of the
        # stream directly; the driver keeps the full batch for
        # Local-tagged delta reads (mirrors SimulatedCluster).
        for h, share in zip(self._handles, self._round_robin(batch)):
            self._post(h, ("delta", relation, share))
        self.driver.set_delta(relation, batch)

        for index, block in enumerate(trig.blocks):
            if block.mode == "dist":
                block_start = time.perf_counter()
                slots = [
                    self._ask(h, ("block", relation, index))
                    for h in self._handles
                ]
                self._drain()
                block_wall = time.perf_counter() - block_start
                busy = []
                for w, slot in enumerate(slots):
                    worker_counters, busy_s = slot[0]
                    self.counters.merge(worker_counters)
                    self.metrics.worker_busy_s[w] += busy_s
                    busy.append(busy_s)
                # Critical-path correction for this block: remove the
                # serialized share of the other workers' compute, but
                # never model the block as faster than its slowest
                # worker's own CPU time.
                corrected = max(
                    max(busy), block_wall - (sum(busy) - max(busy))
                )
                oversubscription_s += max(0.0, block_wall - corrected)
            else:
                self._run_local_block(block)

        for h in self._handles:
            self._post(h, ("clear",))
        self.driver.clear_deltas()
        self._sync()
        self.batches_processed += 1

        wall = time.perf_counter() - start
        self.metrics.batches += 1
        self.metrics.wall_s.append(wall)
        self.metrics.scaleout_s.append(max(0.0, wall - oversubscription_s))

    def _run_local_block(self, block) -> None:
        evaluator = self._evaluator(self.counters)
        for stmt in block.statements:
            expr = stmt.expr
            if isinstance(expr, Scatter):
                self._do_scatter(stmt, expr)
            elif isinstance(expr, Repart):
                self._do_repart(stmt, expr)
            elif isinstance(expr, Gather):
                self._store_driver(stmt, self._collect(expr.child))
            else:
                self.counters.statements_executed += 1
                self._store_driver(stmt, evaluator.evaluate(expr))

    # ------------------------------------------------------------------
    # Location transformers (real data movement over the pipes)
    # ------------------------------------------------------------------
    def _read_driver(self, e: Expr) -> GMR:
        if isinstance(e, Rel):
            return self.driver.get_view(e.name)
        if isinstance(e, DeltaRel):
            return self.driver.get_delta(e.name)
        raise TypeError(
            f"single transformer form violated: transformer over {e!r}"
        )

    def _collect(self, e: Expr) -> GMR:
        """Pull a reference's full contents back from the workers."""
        if not isinstance(e, (Rel, DeltaRel)):
            raise TypeError(
                f"single transformer form violated: transformer over {e!r}"
            )
        is_delta = isinstance(e, DeltaRel)
        tag = self.program.tag_of_ref(e.name, is_delta)
        if isinstance(tag, Replicated):
            slot = self._ask(self._handles[0], ("read", e.name, is_delta))
            self._drain()
            return slot[0]
        slots = [
            self._ask(h, ("read", e.name, is_delta)) for h in self._handles
        ]
        self._drain()
        total = GMR()
        for slot in slots:
            total.add_inplace(slot[0])
        return total

    def _do_scatter(self, stmt, expr: Scatter) -> None:
        contents = self._read_driver(expr.child)
        cols = _ref_cols(expr.child)
        parts = self._partition(contents, list(cols), expr.keys)
        for h, part in zip(self._handles, parts):
            self._post(h, ("store", stmt.target, stmt.op, stmt.scope, part))

    def _do_repart(self, stmt, expr: Repart) -> None:
        contents = self._collect(expr.child)
        cols = _ref_cols(expr.child)
        parts = self._partition(contents, list(cols), expr.keys)
        for h, part in zip(self._handles, parts):
            self._post(h, ("store", stmt.target, stmt.op, stmt.scope, part))

    def _store_driver(self, stmt, value: GMR) -> None:
        apply_store(self.driver, stmt.target, stmt.op, stmt.scope, value)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def view(self, name: str) -> GMR:
        """Assemble a view's contents (driver or union of workers)."""
        # Checked even for driver-Local views: a failed batch may have
        # left the driver half-applied, and the contract is that a
        # poisoned/closed backend never serves partial state.
        self._check_usable()
        tag = self._tag(name)
        if isinstance(tag, Local):
            return self.driver.get_view(name)
        if isinstance(tag, Replicated):
            slot = self._ask(self._handles[0], ("view", name))
            self._drain()
            return slot[0]
        slots = [self._ask(h, ("view", name)) for h in self._handles]
        self._drain()
        total = GMR()
        for slot in slots:
            total.add_inplace(slot[0])
        return total

    def snapshot(self) -> GMR:
        return self.view(self.program.top_view)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers; the backend is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for h in self._handles:
            if self._failed is None and h.process.is_alive():
                try:
                    h.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        self._finalizer()  # close pipes, join briefly, terminate stragglers

    def __enter__(self) -> "MultiprocBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
