"""The process-parallel execution backend (real OS processes).

:class:`MultiprocBackend` is the `multiproc` entry in the backend
registry: the scale-out counterpart of
:class:`~repro.distributed.SimulatedCluster`, which stays the semantic
oracle — both execute the identical
:class:`~repro.distributed.DistributedProgram`, so their snapshots must
match batch for batch (the differential test in
``tests/test_multiproc_backend.py`` asserts exactly that).

Topology is a star: the coordinator plays the driver (local blocks,
every location transformer) and N daemon worker processes each hold one
hash partition of every Dist-tagged view.  Per batch:

1. the batch is split round-robin and each worker's share staged as its
   delta (worker-side ingestion, paper §6.2);
2. blocks execute in fused order — distributed blocks are broadcast as
   ``("block", relation, i)`` commands and run *concurrently* across
   workers; local blocks run on the coordinator, with Scatter/Repart/
   Gather performing real data movement;
3. staged deltas are cleared everywhere and one sync barrier confirms
   the batch landed on every worker.

The protocol is *pipelined*: pure-write commands (``delta``,
``store``, ``install``, ``clear``) are posted without waiting for
acknowledgements, and the coordinator only drains replies at genuine
data dependencies — a block's counters, a Gather/Repart collect, the
end-of-batch sync.  Workers execute their pipe strictly in order, so
pipelining never reorders effects; it only removes round-trip stalls.

Data plane.  With ``data_plane="shm"`` (the default) GMR payloads
never cross a pipe: the coordinator encodes them once as
:class:`~repro.storage.columnar.ShmColumnarBlock` bytes written
straight into ref-counted :class:`~repro.storage.pool.SegmentPool`
segments — per-worker delta slices are carved from the batch by stride
(``items[i::n]``) and encoded directly, so per-worker pickles are
never materialized — and pipes carry only small descriptors
``(name, nbytes, generation)``.  Replies (Gather/Repart reads,
snapshots) travel the same way through coordinator-pre-sized reply
segments with an inline overflow fallback.  Every segment is created
and unlinked by the coordinator; workers only attach.  The end-of-batch
sync barrier doubles as the segment-recycling point: once every worker
has drained its pipe, no descriptor is outstanding and all in-flight
segments return to the pool, so a steady-state stream allocates
nothing.  ``data_plane="pickle"`` keeps the PR 3 behavior (whole GMRs
pickled per worker) as the benchmark baseline.

Elasticity.  A worker's state is a deterministic function of the
command stream it has consumed, so worker death is survivable: a
:class:`~repro.parallel.supervisor.WorkerSupervisor` journals every
mutating command, and on failure the coordinator quiesces survivors,
restarts the dead process, replays its partition from the last
checkpoint, rolls the in-flight batch back (journal + driver undo log)
and retries it.  Only when the restart budget is exhausted — or a
worker reports an in-band error, which a restart would deterministically
hit again — does the backend poison itself with
:class:`~repro.exec.BackendError` (``restart_budget=0`` restores the
strict PR 3 fail-fast contract).
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
import weakref
from collections import deque
from dataclasses import dataclass, field

from repro.compiler.plancache import compile_program
from repro.distributed import compile_distributed
from repro.distributed.partitioning import hash_partition
from repro.distributed.program import apply_store, ref_cols as _ref_cols
from repro.distributed.tags import Dist, Local, Replicated, Tag
from repro.eval import CompiledEvaluator, Database, Evaluator
from repro.exec.backend import BackendError, ExecutionBackend
from repro.metrics import Counters
from repro.parallel.protocol import WorkerTask, program_fingerprint
from repro.parallel.supervisor import WorkerSupervisor
from repro.parallel.worker import worker_main
from repro.query.ast import DeltaRel, Expr, Gather, Rel, Repart, Scatter
from repro.ring import GMR
from repro.storage.columnar import decode_gmr, encode_pairs
from repro.storage.pool import SegmentPool
from repro.workloads.spec import QuerySpec

#: Starting capacity for reply segments before any size feedback.
_REPLY_HINT_DEFAULT = 65536

DATA_PLANES = ("pickle", "shm")


class _WorkerFailure(Exception):
    """Internal: a worker died, wedged, or broke its pipe.

    Unlike an in-band ``err`` reply (a deterministic program error),
    this is a *process* failure — the supervisor may be able to restart
    and replay.  Never escapes the backend's public surface.
    """

    def __init__(self, index: int, message: str):
        super().__init__(message)
        self.index = index
        self.message = message


@dataclass
class WorkerHandle:
    """One spawned worker: its process and the coordinator's pipe end."""

    index: int
    process: mp.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection


@dataclass
class ParallelMetrics:
    """Per-run accounting of the process-parallel backend.

    ``wall_s`` is measured wall-clock per batch.  ``scaleout_s`` is the
    *critical-path* latency estimate: wall time minus the
    oversubscription penalty of every distributed block —
    ``max(0, block_wall - max(max_busy, block_wall - (sum_busy -
    max_busy)))`` — where each worker self-reports its CPU time
    (``busy``) for the block.  On a machine with at least ``n_workers``
    free cores the penalty vanishes (workers genuinely overlap and
    ``block_wall`` already reflects it); on an oversubscribed box — a
    1-core CI runner — the OS serializes the workers, and the estimate
    reconstructs the latency a real scale-out deployment would see,
    clamped so a block is never modeled faster than its slowest
    worker's own compute.
    """

    batches: int = 0
    wall_s: list = field(default_factory=list)
    scaleout_s: list = field(default_factory=list)
    #: total busy CPU seconds per worker index (load-balance diagnostics)
    worker_busy_s: list = field(default_factory=list)
    #: worker processes restarted by the supervisor
    restarts: int = 0

    @property
    def total_wall_s(self) -> float:
        return sum(self.wall_s)

    @property
    def total_scaleout_s(self) -> float:
        return sum(self.scaleout_s)

    def balance(self) -> float:
        """max/mean worker busy time (1.0 = perfectly balanced).

        Idle workers count toward the mean — a worker that received no
        work at all is the worst imbalance, not a rounding artifact.
        """
        busy = self.worker_busy_s
        if not busy or not any(b > 0 for b in busy):
            return 1.0
        return max(busy) / (sum(busy) / len(busy))

    def bind(self, scope) -> None:
        """Export through a :class:`repro.obs.MetricsScope` (callback
        gauges — the coordinator mutates plain fields on the hot path)."""
        scope.gauge_fn(
            "repro_multiproc_batches",
            lambda: self.batches,
            help="batches executed by the process-parallel backend",
        )
        scope.gauge_fn(
            "repro_multiproc_restarts",
            lambda: self.restarts,
            help="worker processes restarted by the supervisor",
        )
        scope.gauge_fn(
            "repro_multiproc_wall_seconds",
            lambda: self.total_wall_s,
            help="cumulative per-batch wall time",
        )
        scope.gauge_fn(
            "repro_multiproc_scaleout_seconds",
            lambda: self.total_scaleout_s,
            help="cumulative critical-path latency estimate",
        )
        scope.gauge_fn(
            "repro_multiproc_balance",
            self.balance,
            help="max/mean worker busy time (1.0 = balanced)",
        )


def _default_start_method() -> str:
    # fork is an order of magnitude cheaper to start and the tests spin
    # up many short-lived backends, but it is only safe where CPython
    # itself still defaults to it (Linux); macOS switched to spawn
    # because forking a process that has used threads/frameworks can
    # deadlock (bpo-33725), and Windows never had fork.
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _shutdown_workers(handles: list[WorkerHandle], pool=None) -> None:
    """GC/exit-time cleanup; must not reference the backend object.

    ``handles`` is the backend's *live* list — worker restarts replace
    entries in place, so the finalizer always sees the current
    processes.  The pool is closed (segments unlinked) only after the
    workers are down, so no attach can race the unlink.
    """
    for h in handles:
        try:
            h.conn.close()
        except OSError:
            pass
    deadline = time.monotonic() + 1.0
    for h in handles:
        h.process.join(max(0.0, deadline - time.monotonic()))
    for h in handles:
        if h.process.is_alive():
            h.process.terminate()
    if pool is not None:
        pool.close()


class MultiprocBackend(ExecutionBackend):
    """Executes a distributed maintenance program across OS processes."""

    def __init__(
        self,
        spec: QuerySpec,
        n_workers: int = 2,
        opt_level: int = 3,
        use_compiled: bool = True,
        counters: Counters | None = None,
        reply_timeout_s: float = 120.0,
        start_method: str | None = None,
        data_plane: str = "shm",
        restart_budget: int = 3,
        checkpoint_every: int = 16,
    ):
        if n_workers < 1:
            raise ValueError("multiproc backend needs at least one worker")
        if data_plane not in DATA_PLANES:
            raise ValueError(
                f"unknown data plane {data_plane!r}; expected one of "
                f"{DATA_PLANES}"
            )
        self.spec = spec
        self.n_workers = n_workers
        self.use_compiled = use_compiled
        self.reply_timeout_s = reply_timeout_s
        self.data_plane = data_plane
        self.counters = counters if counters is not None else Counters()
        self._opt_level = opt_level
        self.program = compile_distributed(
            spec.query,
            name=spec.name,
            key_hints=spec.key_hints,
            updatable=spec.updatable,
            opt_level=opt_level,
        )
        self._fingerprint = program_fingerprint(self.program)

        self.driver = Database()
        self.plans = compile_program(self.program) if use_compiled else None
        self.batches_processed = 0
        self.metrics = ParallelMetrics(worker_busy_s=[0.0] * n_workers)
        self._failed: str | None = None
        self._closed = False
        self._pending: list[deque] = [deque() for _ in range(n_workers)]
        self._pool = SegmentPool() if data_plane == "shm" else None
        self._supervisor = (
            WorkerSupervisor(n_workers, restart_budget, checkpoint_every)
            if restart_budget > 0
            else None
        )
        self._reply_hints: dict = {}
        self._driver_undo: dict | None = None

        self._ctx = mp.get_context(start_method or _default_start_method())
        handles: list[WorkerHandle] = []
        try:
            for i in range(n_workers):
                handles.append(self._spawn_worker(i))
            self._handles = handles
            # Ready handshake: workers compile concurrently; collecting
            # after all have started surfaces compile errors up front.
            for h in handles:
                self._recv(h)
        except _WorkerFailure as exc:
            _shutdown_workers(handles, self._pool)
            raise BackendError(exc.message) from exc
        except BaseException:
            _shutdown_workers(handles, self._pool)
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._handles, self._pool
        )

    def _spawn_worker(self, index: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        task = WorkerTask(
            spec=self.spec,
            opt_level=self._opt_level,
            n_workers=self.n_workers,
            index=index,
            use_compiled=self.use_compiled,
            fingerprint=self._fingerprint,
        )
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, task),
            name=f"repro-{self.spec.name}-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return WorkerHandle(index, proc, parent_conn)

    # ------------------------------------------------------------------
    # Pipe plumbing (pipelined request/reply)
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> BackendError:
        self._failed = message
        return BackendError(message)

    def _check_usable(self) -> None:
        if self._closed:
            raise BackendError(
                f"multiproc backend for {self.spec.name!r} is closed"
            )
        if self._failed is not None:
            raise BackendError(
                f"multiproc backend for {self.spec.name!r} already failed: "
                f"{self._failed}"
            )

    def _post(self, handle: WorkerHandle, msg: tuple) -> None:
        """Send a pure-write command; the worker will not reply."""
        try:
            handle.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerFailure(
                handle.index,
                f"worker {handle.index} (pid {handle.process.pid}) is gone: "
                f"cannot send {msg[0]!r} command ({exc})",
            ) from exc

    def _ask(self, handle: WorkerHandle, msg: tuple) -> list:
        """Send a command that produces a reply; returns a slot that
        :meth:`_drain` fills with the payload."""
        self._post(handle, msg)
        slot: list = []
        self._pending[handle.index].append(slot)
        return slot

    def _drain(self) -> None:
        """Collect every outstanding reply, in per-worker pipe order."""
        for h in self._handles:
            q = self._pending[h.index]
            while q:
                slot = q.popleft()
                slot.append(self._recv(h))

    def _sync(self) -> None:
        """Barrier: every worker has applied all posted commands."""
        for h in self._handles:
            self._ask(h, ("sync",))
        self._drain()

    def _recv_raw(self, handle: WorkerHandle) -> tuple:
        deadline = time.monotonic() + self.reply_timeout_s
        while True:
            try:
                if handle.conn.poll(0.05):
                    break
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerFailure(
                    handle.index, f"worker {handle.index} pipe failed: {exc}"
                ) from exc
            if not handle.process.is_alive():
                raise _WorkerFailure(
                    handle.index,
                    f"worker {handle.index} (pid {handle.process.pid}) died "
                    f"mid-batch (exit code {handle.process.exitcode})",
                )
            if time.monotonic() > deadline:
                raise _WorkerFailure(
                    handle.index,
                    f"worker {handle.index} (pid {handle.process.pid}) did "
                    f"not reply within {self.reply_timeout_s}s",
                )
        try:
            return handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerFailure(
                handle.index,
                f"worker {handle.index} closed its pipe mid-reply ({exc})",
            ) from exc

    def _recv(self, handle: WorkerHandle):
        status, payload = self._recv_raw(handle)
        if status == "err":
            # Deterministic program error: a restarted worker would hit
            # it again, so poison instead of burning restart budget.
            raise self._fail(
                f"worker {handle.index} raised while serving:\n{payload}"
            )
        return payload

    # ------------------------------------------------------------------
    # Payload encoding (the data plane)
    # ------------------------------------------------------------------
    def _make_payload(self, value, refs: int = 1) -> tuple:
        """Encode a GMR (or raw ``(tuple, mult)`` pairs) for the wire.

        Returns ``(payload, journal_bytes)``.  On the shm plane the
        contents are laid out once in a pool segment and the payload is
        a descriptor; pairs are encoded directly — no intermediate GMR.
        ``journal_bytes`` is the plane-independent codec encoding for
        the supervisor's journal (``None`` when unsupervised).
        """
        journal = self._supervisor is not None
        if self._pool is not None:
            pairs = value.data.items() if hasattr(value, "data") else value
            block = encode_pairs(pairs)
            jbytes = block.to_bytes() if journal else None
            if block.n_rows == 0:
                return ("e",), jbytes
            seg = self._pool.acquire(block.nbytes, refs=refs)
            block.write_into(seg.buf)
            return ("s", seg.name, block.nbytes, seg.generation), jbytes
        gmr = value if hasattr(value, "data") else GMR.unsafe(dict(value))
        jbytes = encode_pairs(gmr.data.items()).to_bytes() if journal else None
        return ("g", gmr), jbytes

    def _reply_spec(self, key) -> tuple:
        """Pre-size a reply segment for a ``read``/``view`` command.

        Returns ``(spec, segment)``; ``(None, None)`` on the pickle
        plane.  Capacity starts at 64 KiB and adapts per reply key from
        observed sizes (overflows fall back to inline bytes and bump
        the hint, so a growing view pays the pipe copy at most once per
        size class)."""
        if self._pool is None:
            return None, None
        hint = self._reply_hints.get(key, _REPLY_HINT_DEFAULT)
        seg = self._pool.acquire(hint, refs=1)
        return ("s", seg.name, seg.capacity), seg

    def _decode_reply(self, payload, seg, key) -> GMR:
        """Materialize a ``read``/``view`` reply; recycles ``seg``."""
        kind = payload[0]
        if kind == "g":
            result = payload[1]
        elif kind == "e":
            result = GMR()
        elif kind == "s":
            _, _name, nbytes = payload
            result = decode_gmr(seg.buf[:nbytes])
            if nbytes > self._reply_hints.get(key, _REPLY_HINT_DEFAULT):
                self._reply_hints[key] = nbytes
        elif kind == "b":
            result = decode_gmr(payload[1])
            # The pre-sized segment overflowed; remember the real size.
            self._reply_hints[key] = 2 * len(payload[1])
        else:
            raise BackendError(f"malformed reply payload {payload!r}")
        if seg is not None:
            self._pool.release(seg.name)
        return result

    def _stage(self, index: int, entry: tuple) -> None:
        if self._supervisor is not None:
            self._supervisor.stage(index, entry)

    # ------------------------------------------------------------------
    # Worker recovery (restart + journal replay)
    # ------------------------------------------------------------------
    def _recover(self, failure: _WorkerFailure) -> None:
        """Bring the backend back to the last committed state.

        Restarts dead workers (journal replay), quiesces and — when
        their staged commands touched views — resets survivors, rolls
        the driver back, and recycles every in-flight segment.  Raises
        the poisoning :class:`BackendError` when unsupervised or out of
        restart budget.  Safe to re-enter: a worker dying *during*
        recovery surfaces as a fresh ``_WorkerFailure`` and the caller
        loops back in, with the budget bounding total attempts.
        """
        sup = self._supervisor
        if sup is None:
            raise self._fail(failure.message)
        dead = [h for h in self._handles if not h.process.is_alive()]
        failing = self._handles[failure.index]
        if failing not in dead:
            # Wedged past its deadline or pipe broken while the process
            # lingers: it is unrecoverable in place, so make it dead.
            failing.process.terminate()
            failing.process.join(5.0)
            dead.append(failing)
        for h in dead:
            if not sup.consume_budget():
                raise self._fail(
                    f"worker {h.index} failed with the restart budget "
                    f"exhausted: {failure.message}"
                )
        self.metrics.restarts = sup.restarts
        dead_idx = {h.index for h in dead}

        # Quiesce survivors: drain the replies they still owe so their
        # pipes are empty, then reset+replay any whose staged commands
        # mutated views (a staged delta alone is overwritten by the
        # retry, so those workers keep their state).
        for h in self._handles:
            if h.index in dead_idx:
                continue
            self._resync(h)
            if sup.journals[h.index].staged_mutates_views():
                self._post(h, ("reset",))
                self._replay(h)

        # Restart the dead and rebuild their partitions from the
        # journal (fresh process: checkpoint installs + committed
        # commands, finished with a barrier).
        for h in dead:
            try:
                h.conn.close()
            except OSError:
                pass
            replacement = self._spawn_worker(h.index)
            self._handles[h.index] = replacement
            self._pending[h.index].clear()
            self._recv(replacement)  # ready handshake
            self._replay(replacement)

        # Every pipe is quiet again: no descriptor is outstanding.
        if self._pool is not None:
            self._pool.release_all_inflight()
        sup.rollback_all()
        self._rollback_driver()

    def _resync(self, handle: WorkerHandle) -> None:
        """Discard a survivor's outstanding replies and re-barrier.

        Workers answer strictly in order, so the pending queue's length
        is exactly the number of replies still in (or headed for) the
        pipe.  ``err`` replies are discarded too: they answer abandoned
        commands, and the retry will re-encounter any deterministic
        error itself.
        """
        q = self._pending[handle.index]
        while q:
            q.popleft()
            self._recv_raw(handle)
        self._post(handle, ("sync",))
        status, _ = self._recv_raw(handle)
        if status != "ok":
            raise _WorkerFailure(
                handle.index,
                f"worker {handle.index} failed its recovery barrier",
            )

    def _replay(self, handle: WorkerHandle) -> None:
        """Re-send a worker's journal: checkpoint, then commands."""
        journal = self._supervisor.journals[handle.index]
        for name, gmr in journal.checkpoint.items():
            # Pickled inline: send() gives the worker its own copy and
            # leaves the coordinator's checkpoint untouched.
            self._post(handle, ("install", name, ("g", gmr)))
        for entry in journal.committed:
            kind = entry[0]
            if kind == "block":
                _, relation, index = entry
                self._post(handle, ("block", relation, index))
                self._recv(handle)  # discard: counters already merged
            elif kind == "clear":
                self._post(handle, ("clear",))
            elif kind == "delta":
                self._post(handle, ("delta", entry[1], ("b", entry[2])))
            elif kind == "install":
                self._post(handle, ("install", entry[1], ("b", entry[2])))
            else:  # store
                _, target, op, scope, payload = entry
                self._post(
                    handle, ("store", target, op, scope, ("b", payload))
                )
        self._post(handle, ("sync",))
        self._recv(handle)

    def _rollback_driver(self) -> None:
        """Return the driver to its state before the failed batch."""
        undo = self._driver_undo
        if undo:
            for name, gmr in undo.items():
                self.driver.set_view(name, gmr)
            undo.clear()
        self.driver.clear_deltas()

    def _restore_counters(self, before: dict, busy_before: list) -> None:
        for name, value in before.items():
            if name != "virtual_instructions":
                setattr(self.counters, name, value)
        self.metrics.worker_busy_s[:] = busy_before

    # ------------------------------------------------------------------
    # Placement helpers (shared semantics with SimulatedCluster)
    # ------------------------------------------------------------------
    def _tag(self, name: str) -> Tag:
        return self.program.partitioning.get(name, Local())

    def _partition(self, contents: GMR, cols, keys) -> list[GMR]:
        return hash_partition(contents, cols, keys, self.n_workers)

    def _evaluator(self, counters: Counters):
        if self.use_compiled:
            return CompiledEvaluator(self.driver, counters, plans=self.plans)
        return Evaluator(self.driver, counters)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        """Compute every view from ``base`` and install it by tag."""
        self._check_usable()
        evaluator = Evaluator(base)
        computed = []
        for info in self.program.local_program.views.values():
            contents = evaluator.evaluate(info.definition)
            if not contents.is_zero():
                computed.append((info, contents))
        while True:
            try:
                self._initialize_once(computed)
                return
            except _WorkerFailure as exc:
                self._recover(exc)

    def _initialize_once(self, computed) -> None:
        for info, contents in computed:
            tag = self.program.partitioning.get(info.name)
            if isinstance(tag, Dist):
                parts = self._partition(contents, list(info.cols), tag.keys)
                for h, part in zip(self._handles, parts):
                    payload, jbytes = self._make_payload(part)
                    self._stage(h.index, ("install", info.name, jbytes))
                    self._post(h, ("install", info.name, payload))
            elif isinstance(tag, Replicated):
                payload, jbytes = self._make_payload(
                    contents, refs=self.n_workers
                )
                for h in self._handles:
                    self._stage(h.index, ("install", info.name, jbytes))
                    self._post(h, ("install", info.name, payload))
            else:
                self.driver.set_view(info.name, contents)
        self._sync()
        if self._supervisor is not None:
            self._supervisor.commit_all()
        if self._pool is not None:
            self._pool.release_all_inflight()

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def on_batch(self, relation: str, batch: GMR) -> None:
        """Route one update batch through the coordinator and workers."""
        self._check_usable()
        trig = self.program.triggers.get(relation)
        if trig is None:
            raise KeyError(f"no trigger for relation {relation!r}")
        while True:
            counters_before = self.counters.snapshot()
            busy_before = list(self.metrics.worker_busy_s)
            try:
                self._on_batch_once(relation, batch, trig)
                break
            except _WorkerFailure as exc:
                # A failed attempt must leave no trace: counters and
                # busy accounting roll back here, worker/driver state
                # inside _recover.
                self._restore_counters(counters_before, busy_before)
                self._recover(exc)
        self._maybe_checkpoint()

    def _on_batch_once(self, relation: str, batch: GMR, trig) -> None:
        start = time.perf_counter()
        oversubscription_s = 0.0
        if self._supervisor is not None:
            self._driver_undo = {}

        # Worker-side ingestion: each worker receives its share of the
        # stream directly (stride slices, the same assignment as
        # round-robin partitioning, but encoded straight from the pairs
        # — no per-worker GMR is ever built on the shm plane); the
        # driver keeps the full batch for Local-tagged delta reads
        # (mirrors SimulatedCluster).
        items = list(batch.data.items())
        n = self.n_workers
        for h in self._handles:
            payload, jbytes = self._make_payload(items[h.index::n])
            self._stage(h.index, ("delta", relation, jbytes))
            self._post(h, ("delta", relation, payload))
        self.driver.set_delta(relation, batch)

        for index, block in enumerate(trig.blocks):
            if block.mode == "dist":
                block_start = time.perf_counter()
                slots = []
                for h in self._handles:
                    self._stage(h.index, ("block", relation, index))
                    slots.append(self._ask(h, ("block", relation, index)))
                self._drain()
                block_wall = time.perf_counter() - block_start
                busy = []
                for w, slot in enumerate(slots):
                    worker_counters, busy_s = slot[0]
                    self.counters.merge(worker_counters)
                    self.metrics.worker_busy_s[w] += busy_s
                    busy.append(busy_s)
                # Critical-path correction for this block: remove the
                # serialized share of the other workers' compute, but
                # never model the block as faster than its slowest
                # worker's own CPU time.
                corrected = max(
                    max(busy), block_wall - (sum(busy) - max(busy))
                )
                oversubscription_s += max(0.0, block_wall - corrected)
            else:
                self._run_local_block(block)

        for h in self._handles:
            self._stage(h.index, ("clear",))
            self._post(h, ("clear",))
        self.driver.clear_deltas()
        self._sync()
        # The barrier committed the batch everywhere: promote the
        # journal, drop the undo log, and recycle every segment (all
        # pipes drained, so no descriptor is outstanding).
        if self._supervisor is not None:
            self._supervisor.commit_all()
            self._driver_undo = None
        if self._pool is not None:
            self._pool.release_all_inflight()
        self.batches_processed += 1

        wall = time.perf_counter() - start
        self.metrics.batches += 1
        self.metrics.wall_s.append(wall)
        self.metrics.scaleout_s.append(max(0.0, wall - oversubscription_s))

    def _maybe_checkpoint(self) -> None:
        """Periodically dump worker views to bound replay cost."""
        sup = self._supervisor
        if sup is None or not sup.due_checkpoint(self.batches_processed):
            return
        while True:
            try:
                slots = [self._ask(h, ("dump",)) for h in self._handles]
                self._drain()
                break
            except _WorkerFailure as exc:
                self._recover(exc)
        for h, slot in zip(self._handles, slots):
            sup.journals[h.index].set_checkpoint(slot[0])

    def _run_local_block(self, block) -> None:
        evaluator = self._evaluator(self.counters)
        for stmt in block.statements:
            expr = stmt.expr
            if isinstance(expr, Scatter):
                self._do_scatter(stmt, expr)
            elif isinstance(expr, Repart):
                self._do_repart(stmt, expr)
            elif isinstance(expr, Gather):
                self._store_driver(stmt, self._collect(expr.child))
            else:
                self.counters.statements_executed += 1
                self._store_driver(stmt, evaluator.evaluate(expr))

    # ------------------------------------------------------------------
    # Location transformers (real data movement)
    # ------------------------------------------------------------------
    def _read_driver(self, e: Expr) -> GMR:
        if isinstance(e, Rel):
            return self.driver.get_view(e.name)
        if isinstance(e, DeltaRel):
            return self.driver.get_delta(e.name)
        raise TypeError(
            f"single transformer form violated: transformer over {e!r}"
        )

    def _collect(self, e: Expr) -> GMR:
        """Pull a reference's full contents back from the workers."""
        if not isinstance(e, (Rel, DeltaRel)):
            raise TypeError(
                f"single transformer form violated: transformer over {e!r}"
            )
        is_delta = isinstance(e, DeltaRel)
        tag = self.program.tag_of_ref(e.name, is_delta)
        key = (e.name, is_delta)
        if isinstance(tag, Replicated):
            spec, seg = self._reply_spec(key)
            slot = self._ask(self._handles[0], ("read", e.name, is_delta, spec))
            self._drain()
            return self._decode_reply(slot[0], seg, key)
        asked = []
        for h in self._handles:
            spec, seg = self._reply_spec(key)
            asked.append(
                (self._ask(h, ("read", e.name, is_delta, spec)), seg)
            )
        self._drain()
        total = GMR()
        for slot, seg in asked:
            total.add_inplace(self._decode_reply(slot[0], seg, key))
        return total

    def _scatter_parts(self, stmt, parts: list[GMR]) -> None:
        for h, part in zip(self._handles, parts):
            payload, jbytes = self._make_payload(part)
            self._stage(
                h.index, ("store", stmt.target, stmt.op, stmt.scope, jbytes)
            )
            self._post(
                h, ("store", stmt.target, stmt.op, stmt.scope, payload)
            )

    def _do_scatter(self, stmt, expr: Scatter) -> None:
        contents = self._read_driver(expr.child)
        cols = _ref_cols(expr.child)
        self._scatter_parts(
            stmt, self._partition(contents, list(cols), expr.keys)
        )

    def _do_repart(self, stmt, expr: Repart) -> None:
        contents = self._collect(expr.child)
        cols = _ref_cols(expr.child)
        self._scatter_parts(
            stmt, self._partition(contents, list(cols), expr.keys)
        )

    def _store_driver(self, stmt, value: GMR) -> None:
        undo = self._driver_undo
        if (
            undo is not None
            and stmt.scope != "batch"
            and stmt.target not in undo
        ):
            undo[stmt.target] = GMR(
                dict(self.driver.get_view(stmt.target).data)
            )
        apply_store(self.driver, stmt.target, stmt.op, stmt.scope, value)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def view(self, name: str) -> GMR:
        """Assemble a view's contents (driver or union of workers)."""
        # Checked even for driver-Local views: a failed batch may have
        # left the driver half-applied, and the contract is that a
        # poisoned/closed backend never serves partial state.
        self._check_usable()
        tag = self._tag(name)
        if isinstance(tag, Local):
            return self.driver.get_view(name)
        while True:
            try:
                return self._view_once(name, tag)
            except _WorkerFailure as exc:
                self._recover(exc)

    def _view_once(self, name: str, tag: Tag) -> GMR:
        key = (name, False)
        if isinstance(tag, Replicated):
            spec, seg = self._reply_spec(key)
            slot = self._ask(self._handles[0], ("view", name, spec))
            self._drain()
            return self._decode_reply(slot[0], seg, key)
        asked = []
        for h in self._handles:
            spec, seg = self._reply_spec(key)
            asked.append((self._ask(h, ("view", name, spec)), seg))
        self._drain()
        total = GMR()
        for slot, seg in asked:
            total.add_inplace(self._decode_reply(slot[0], seg, key))
        return total

    def snapshot(self) -> GMR:
        return self.view(self.program.top_view)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers; the backend is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for h in self._handles:
            if self._failed is None and h.process.is_alive():
                try:
                    h.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        # Close pipes, join briefly, terminate stragglers, then unlink
        # every shared-memory segment.
        self._finalizer()

    def __enter__(self) -> "MultiprocBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
