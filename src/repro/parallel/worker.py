"""The worker process of the process-parallel backend.

Each worker owns one hash partition of every Dist-tagged view (plus
full copies of Replicated temporaries), rebuilt locally: the startup
payload is a picklable :class:`~repro.parallel.protocol.WorkerTask`,
the worker re-runs the distributed compiler on the spec, verifies the
program fingerprint against the coordinator's, and lowers its own
compile-once pipelines.  No closures ever cross the pipe.

GMR contents arrive and leave as tagged payloads (see ``protocol``):
inline GMRs on the pickle data plane, shared-memory block descriptors
on the shm plane.  The worker only ever *attaches* to segments — the
coordinator creates and unlinks every one, so a worker crash cannot
leak shared memory — and caches attachments by name, making repeat
descriptors for a recycled segment free.

The loop executes its pipe strictly in order, and only *replying*
commands (``block``, ``read``, ``view``, ``dump``, ``sync``, ``stop``)
send anything back; pure writes (``delta``, ``install``, ``store``,
``clear``, ``reset``) are silent, which lets the coordinator pipeline a
whole batch of commands and drain replies only at genuine data
dependencies.  Any exception is reported in-band as an ``err`` reply
carrying the formatted traceback — the coordinator treats that as a
deterministic program error and poisons the backend (a restart would
just hit it again), unlike process death, which is survivable via
journal replay.
"""

from __future__ import annotations

import time
import traceback

from repro.distributed.program import apply_store
from repro.metrics import Counters
from repro.parallel.protocol import decode_payload, encode_reply
from repro.storage.pool import SegmentAttacher


def _build_state(task):
    """Compile the worker's program and evaluation pipeline locally."""
    # Imports happen inside the worker so a spawn-started process pulls
    # in the full package (including the scalar-function registry that
    # workload modules populate at import time) before compiling.
    import repro.workloads  # noqa: F401  (registers scalar functions)
    from repro.compiler.plancache import compile_program
    from repro.distributed import compile_distributed
    from repro.eval import CompiledEvaluator, Database, Evaluator
    from repro.parallel.protocol import program_fingerprint

    spec = task.spec
    program = compile_distributed(
        spec.query,
        name=spec.name,
        key_hints=spec.key_hints,
        updatable=spec.updatable,
        opt_level=task.opt_level,
    )
    got = program_fingerprint(program)
    if got != task.fingerprint:
        raise RuntimeError(
            f"worker {task.index} compiled a different program than the "
            f"coordinator (fingerprint {got[:12]} != "
            f"{task.fingerprint[:12]}); coordinator and workers must run "
            "the same code version"
        )
    db = Database()
    counters = Counters()
    if task.use_compiled:
        evaluator = CompiledEvaluator(db, counters, plans=compile_program(program))
    else:
        evaluator = Evaluator(db, counters)
    return program, db, evaluator, counters


def _counters_delta(before: dict, after: dict) -> Counters:
    out = Counters()
    for name in before:
        if name == "virtual_instructions":
            continue
        setattr(out, name, after[name] - before[name])
    return out


def worker_main(conn, task) -> None:
    """Entry point of one worker process (fork- and spawn-safe)."""
    try:
        program, db, evaluator, counters = _build_state(task)
    except Exception:
        try:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()
        return
    attacher = SegmentAttacher()
    conn.send(("ok", "ready"))

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # coordinator went away; daemon exit
        try:
            kind = msg[0]
            if kind == "stop":
                conn.send(("ok", None))
                break
            elif kind == "block":
                _, relation, block_index = msg
                before = counters.snapshot()
                # CPU time, not wall: on an oversubscribed box a worker's
                # wall clock counts time it spent scheduled out, which
                # would corrupt the coordinator's critical-path estimate.
                start = time.process_time()
                block = program.triggers[relation].blocks[block_index]
                for stmt in block.statements:
                    counters.statements_executed += 1
                    value = evaluator.evaluate(stmt.expr)
                    apply_store(db, stmt.target, stmt.op, stmt.scope, value)
                busy_s = time.process_time() - start
                conn.send(
                    ("ok",
                     (_counters_delta(before, counters.snapshot()), busy_s))
                )
            elif kind == "delta":
                db.set_delta(msg[1], decode_payload(msg[2], attacher))
            elif kind == "install":
                db.set_view(msg[1], decode_payload(msg[2], attacher))
            elif kind == "store":
                _, target, op, scope, payload = msg
                value = decode_payload(payload, attacher)
                apply_store(db, target, op, scope, value)
            elif kind == "read":
                _, name, is_delta, reply_spec = msg
                gmr = db.get_delta(name) if is_delta else db.get_view(name)
                conn.send(("ok", encode_reply(gmr, reply_spec, attacher)))
            elif kind == "view":
                _, name, reply_spec = msg
                conn.send(
                    ("ok", encode_reply(db.get_view(name), reply_spec, attacher))
                )
            elif kind == "clear":
                db.clear_deltas()
            elif kind == "dump":
                # Checkpoint: always inline — pickling a full dump is
                # off the fast path, and the coordinator stores it as
                # plain GMRs anyway.
                conn.send(("ok", dict(db.views)))
            elif kind == "reset":
                db.views.clear()
                db.deltas.clear()
            elif kind == "sync":
                conn.send(("ok", None))
            else:
                raise ValueError(f"unknown worker command {kind!r}")
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    attacher.close()
    conn.close()
