"""Worker-failure supervision for the process-parallel backend.

A worker's state is a deterministic function of the *ordered command
stream* it has consumed: ``install``/``delta``/``store`` carry their
contents explicitly, ``block`` execution depends only on worker-local
state, and every byte of data movement passes through the coordinator.
So the coordinator can resurrect any worker without touching the
others: journal the mutating commands it sends, and on death replay
them — from the last checkpoint — into a fresh process.

:class:`WorkerJournal` keeps that per-worker history in two bands:

* ``committed`` — commands up to the last batch that reached its sync
  barrier, plus a ``checkpoint`` (a full dump of the worker's views)
  that periodically truncates the committed band so replay cost stays
  bounded;
* ``staged`` — commands of the batch in flight.  A successful barrier
  promotes them; a failure rolls them back and the whole batch is
  retried after recovery.

Journaled payloads are stored as
:class:`~repro.storage.columnar.ShmColumnarBlock` bytes — immutable
and independent of the data plane, so replay never depends on a
shared-memory segment that has since been recycled.

:class:`WorkerSupervisor` adds the policy: a bounded restart budget
(shared across workers — each restart spends one) and the checkpoint
cadence.  When the budget runs out the backend falls back to the
PR 3 contract and poisons itself with a ``BackendError``.
"""

from __future__ import annotations

from repro.ring import GMR

#: Journal entry kinds whose replay needs a reply drained (and
#: discarded — replayed counters would double-count).
REPLAYS_WITH_REPLY = frozenset({"block"})

#: Entry kinds that mutate a worker's *views* (not just staged deltas).
#: A surviving worker whose staged band contains one of these cannot be
#: rolled back in place and must be reset + replayed before the batch
#: retry; a worker that only staged deltas need not be — ``delta``
#: replaces rather than accumulates, so the retry overwrites it.
_VIEW_MUTATORS = frozenset({"store", "block", "install"})


class WorkerJournal:
    """Replayable command history of one worker."""

    __slots__ = ("checkpoint", "committed", "staged")

    def __init__(self) -> None:
        self.checkpoint: dict[str, GMR] = {}
        self.committed: list[tuple] = []
        self.staged: list[tuple] = []

    def stage(self, entry: tuple) -> None:
        self.staged.append(entry)

    def commit(self) -> None:
        self.committed.extend(self.staged)
        self.staged.clear()

    def rollback(self) -> None:
        self.staged.clear()

    def staged_mutates_views(self) -> bool:
        return any(e[0] in _VIEW_MUTATORS for e in self.staged)

    def set_checkpoint(self, views: dict[str, GMR]) -> None:
        """Install a fresh dump and truncate the committed band."""
        self.checkpoint = views
        self.committed.clear()

    def replay_cost(self) -> int:
        """Entries a replay would re-send (diagnostics)."""
        return len(self.checkpoint) + len(self.committed)


class WorkerSupervisor:
    """Restart policy + journals for all workers of one backend."""

    def __init__(
        self, n_workers: int, restart_budget: int, checkpoint_every: int
    ) -> None:
        self.journals = [WorkerJournal() for _ in range(n_workers)]
        self.restart_budget = restart_budget
        self.checkpoint_every = max(1, checkpoint_every)
        self.restarts = 0

    def consume_budget(self) -> bool:
        """Spend one restart; ``False`` when the budget is exhausted."""
        if self.restart_budget <= 0:
            return False
        self.restart_budget -= 1
        self.restarts += 1
        return True

    def stage(self, index: int, entry: tuple) -> None:
        self.journals[index].stage(entry)

    def commit_all(self) -> None:
        for j in self.journals:
            j.commit()

    def rollback_all(self) -> None:
        for j in self.journals:
            j.rollback()

    def due_checkpoint(self, batches_committed: int) -> bool:
        return batches_committed % self.checkpoint_every == 0
