"""Fraud detection with a nested-aggregate continuous query.

Another intro motivation: flag accounts whose transaction count
exceeds a per-account threshold — a correlated nested aggregate, the
query class the paper's *domain extraction* technique (Section 3.2)
makes incrementally maintainable:

    SELECT COUNT(*) FROM ACCOUNTS a
    WHERE a.threshold <
          (SELECT COUNT(*) FROM TXNS t WHERE t.acct = a.acct)

The query is served from a :class:`ViewService` session twice — once
compiled with domain extraction and once with the naive
recompute-twice delta (the ``use_domain`` backend option) — so one
transaction stream is routed to both compilations.  A push
subscription with an initial-snapshot event tracks the alert count
live; per-view counters expose the cost gap between the two
compilations.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

import random
import time

from repro.eval import Database, evaluate
from repro.metrics import Counters
from repro.query.builder import assign, cmp, join, rel, sum_over
from repro.ring import GMR
from repro.service import ViewService

N_ACCOUNTS = 400
N_BATCHES = 12
BATCH_SIZE = 20
WARM_TXNS = 1500


def build_query():
    """COUNT of accounts whose txn count exceeds their threshold."""
    nested = sum_over([], join(rel("TXNS", "acct2", "amount"),
                               cmp("acct2", "==", "acct")))
    return sum_over(
        [],
        join(
            rel("ACCOUNTS", "acct", "threshold"),
            assign("txn_count", nested),
            cmp("threshold", "<", "txn_count"),
        ),
    )


def main() -> None:
    query = build_query()
    rng = random.Random(3)

    service = ViewService()
    service.load(
        "ACCOUNTS",
        [(a, rng.randint(3, 12)) for a in range(N_ACCOUNTS)],
    )
    # Warm store: the advantage of domain extraction is |batch domain|
    # vs |materialized state|, so start with history already loaded.
    service.load(
        "TXNS",
        [
            (rng.randrange(N_ACCOUNTS), rng.randint(1, 500))
            for _ in range(WARM_TXNS)
        ],
    )

    counters = {
        "with domain extraction": Counters(),
        "recompute-twice delta": Counters(),
    }
    for label, use_domain in (
        ("with domain extraction", True),
        ("recompute-twice delta", False),
    ):
        service.create_view(
            label,
            query,
            backend="rivm-batch",
            updatable=frozenset({"TXNS"}),
            counters=counters[label],
            use_domain=use_domain,
        )

    # Live alert feed: the initial-snapshot event seeds the accumulator
    # with the warm-start alert count, so it tracks the view exactly.
    alert_feed = GMR()
    service.subscribe(
        "with domain extraction",
        lambda event: alert_feed.add_inplace(event.delta),
        initial=True,
    )

    batches = []
    for _ in range(N_BATCHES):
        batch = GMR()
        for _ in range(BATCH_SIZE):
            batch.add_tuple(
                (rng.randrange(N_ACCOUNTS), rng.randint(1, 500)), 1
            )
        batches.append(batch)

    start = time.perf_counter()
    for batch in batches:
        service.on_batch("TXNS", batch)
    elapsed = time.perf_counter() - start

    # Both compilations serve the same view, the subscription feed
    # accumulates to the snapshot, and both match re-evaluation from
    # the service's shared base database.
    reference = evaluate(query, service.base)
    for label in counters:
        assert service.snapshot(label) == reference, label
    assert alert_feed == reference, "alert feed diverged"

    print("maintaining the fraud-alert count over "
          f"{N_BATCHES * BATCH_SIZE} transactions "
          f"({elapsed*1e3:.1f} ms serving both compilations):\n")
    for label, c in counters.items():
        print(f"  {label:>24}: {c.virtual_instructions():>10} "
              "virtual instructions")

    on = counters["with domain extraction"].virtual_instructions()
    off = counters["recompute-twice delta"].virtual_instructions()
    print(f"\ndomain extraction speedup: {off/on:.1f}x "
          "(virtual instructions)")

    count = next(iter(service.snapshot("with domain extraction").data.values()), 0)
    print(f"\naccounts currently above their threshold: {count} "
          f"of {N_ACCOUNTS}")


if __name__ == "__main__":
    main()
