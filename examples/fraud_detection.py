"""Fraud detection with a nested-aggregate continuous query.

Another intro motivation: flag accounts whose transaction count
exceeds a per-account threshold — a correlated nested aggregate, the
query class the paper's *domain extraction* technique (Section 3.2)
makes incrementally maintainable:

    SELECT COUNT(*) FROM ACCOUNTS a
    WHERE a.threshold <
          (SELECT COUNT(*) FROM TXNS t WHERE t.acct = a.acct)

The naive delta rule recomputes the assignment twice per update; with
domain extraction the delta touches only the accounts present in the
batch.  The example shows both the maintained alert count and the cost
gap between the two compilations.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

import random
import time

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.metrics import Counters
from repro.query.builder import assign, cmp, join, rel, sum_over
from repro.ring import GMR

N_ACCOUNTS = 400
N_BATCHES = 12
BATCH_SIZE = 20
WARM_TXNS = 1500


def build_query():
    """COUNT of accounts whose txn count exceeds their threshold."""
    nested = sum_over([], join(rel("TXNS", "acct2", "amount"),
                               cmp("acct2", "==", "acct")))
    return sum_over(
        [],
        join(
            rel("ACCOUNTS", "acct", "threshold"),
            assign("txn_count", nested),
            cmp("threshold", "<", "txn_count"),
        ),
    )


def main() -> None:
    query = build_query()
    rng = random.Random(3)

    accounts = Database()
    accounts.insert_rows(
        "ACCOUNTS",
        [(a, rng.randint(3, 12)) for a in range(N_ACCOUNTS)],
    )
    # Warm store: the advantage of domain extraction is |batch domain|
    # vs |materialized state|, so start with history already loaded.
    accounts.insert_rows(
        "TXNS",
        [
            (rng.randrange(N_ACCOUNTS), rng.randint(1, 500))
            for _ in range(WARM_TXNS)
        ],
    )

    batches = []
    for _ in range(N_BATCHES):
        batch = GMR()
        for _ in range(BATCH_SIZE):
            batch.add_tuple(
                (rng.randrange(N_ACCOUNTS), rng.randint(1, 500)), 1
            )
        batches.append(batch)

    runs = {}
    for label, use_domain in (
        ("with domain extraction", True),
        ("recompute-twice delta", False),
    ):
        counters = Counters()
        program = compile_query(
            query,
            "FRAUD",
            updatable=frozenset({"TXNS"}),
            use_domain=use_domain,
        )
        program = apply_batch_preaggregation(program)
        engine = RecursiveIVMEngine(program, mode="batch", counters=counters)
        engine.initialize(accounts.copy())

        reference = accounts.copy()
        start = time.perf_counter()
        for batch in batches:
            engine.on_batch("TXNS", batch)
        elapsed = time.perf_counter() - start

        for batch in batches:
            reference.apply_update("TXNS", batch)
        assert engine.result() == evaluate(query, reference), label
        runs[label] = (elapsed, counters.virtual_instructions(), engine)

    print("maintaining the fraud-alert count over "
          f"{N_BATCHES * BATCH_SIZE} transactions:\n")
    for label, (elapsed, vinstr, _) in runs.items():
        print(f"  {label:>24}: {elapsed*1e3:8.1f} ms, "
              f"{vinstr:>10} virtual instructions")

    on = runs["with domain extraction"][1]
    off = runs["recompute-twice delta"][1]
    print(f"\ndomain extraction speedup: {off/on:.1f}x "
          "(virtual instructions)")

    engine = runs["with domain extraction"][2]
    alerts = engine.result()
    count = next(iter(alerts.data.values()), 0)
    print(f"\naccounts currently above their threshold: {count} "
          f"of {N_ACCOUNTS}")


if __name__ == "__main__":
    main()
