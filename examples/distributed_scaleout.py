"""Distributed scale-out of a TPC-H-style continuous query.

Compiles TPC-H Q3 for the simulated synchronous cluster (the paper's
Section 4 pipeline: annotate -> optimize -> fuse blocks -> plan jobs),
streams order/lineitem/customer batches through clusters of growing
size, and prints the weak-scaling latency/throughput curve — a
miniature of the paper's Figure 9c.

Run:  python examples/distributed_scaleout.py
"""

from __future__ import annotations

from repro.distributed import SimulatedCluster, compile_distributed
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import TPCH_QUERIES

WORKERS = (2, 4, 8, 16)
TUPLES_PER_WORKER = 150


def main() -> None:
    spec = TPCH_QUERIES["Q3"]

    # ------------------------------------------------------------------
    # 1. Compile once; show what the distributed program looks like.
    # ------------------------------------------------------------------
    dprog = compile_distributed(
        spec.query,
        name=spec.name,
        key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    print("=== distributed program (fused blocks) ===")
    print(dprog.describe())

    trig = next(iter(dprog.triggers.values()))
    print(f"\nexample trigger: {len(trig.blocks)} blocks, "
          f"{len(trig.jobs)} jobs")
    print()

    # ------------------------------------------------------------------
    # 2. Weak scaling: each worker contributes a fixed batch share.
    # ------------------------------------------------------------------
    print("=== weak scaling (miniature Figure 9c) ===")
    print(f"{'workers':>8} {'batch':>7} {'median latency':>15} "
          f"{'throughput':>12}")
    for n in WORKERS:
        batch_size = n * TUPLES_PER_WORKER
        prepared = prepare_stream(
            spec, batch_size, sf=0.002, max_batches=3
        )
        cluster = SimulatedCluster(dprog, n_workers=n)
        _preload_static(cluster, prepared, dprog)

        reference = prepared.fresh_static()
        for relation, batch in prepared.batches:
            cluster.on_batch(relation, batch)
            reference.apply_update(relation, batch)

        # The distributed result matches a from-scratch evaluation.
        assert cluster.snapshot() == evaluate(spec.query, reference)

        m = cluster.metrics
        throughput = m.throughput_tuples_per_s(prepared.n_tuples)
        print(f"{n:>8} {batch_size:>7} {m.median_latency_s:>13.4f}s "
              f"{throughput:>10.0f}/s   "
              f"(jobs={m.jobs}, stages={m.stages}, "
              f"shuffled={m.shuffled_bytes}B)")

    print("\nlatency grows mildly with workers (synchronization term)")
    print("while throughput scales with the added batch shares.")


if __name__ == "__main__":
    main()
