"""Distributed scale-out on the real serving cluster.

Earlier revisions of this example drove the *simulated* synchronous
cluster; this one runs the real thing: N :class:`~repro.net.ViewServer`
shard processes-worth of serving (in-process here, real sockets
throughout) behind a :class:`~repro.cluster.ClusterRouter` that owns
the partitioning plan, scatters ingested batches to the owning shards,
gathers snapshots, and merges the per-shard push streams into one
seq-consistent changefeed with a cross-shard drain barrier.

The router infers the placement from the view definitions themselves:
the join ``R ⋈ S on b`` below co-partitions both relations on ``b``,
so every shard maintains only its slice and the merged result is exact
GMR addition across shards.

Run:  python examples/distributed_scaleout.py
"""

from __future__ import annotations

import time

from repro.cluster import ClusterRouter
from repro.net import Client, ViewServer
from repro.ring import GMR
from repro.service import ViewService
from repro.workloads import MICRO_TABLES, generate_micro, stream_batches

SQL_PER_B = "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
SHARD_COUNTS = (1, 2, 4)
BATCH_SIZE = 250
SF = 1.0


def run_cluster(n_shards: int, batches) -> tuple[float, GMR, str]:
    """Serve the view on ``n_shards`` shards; return (elapsed,
    final snapshot, placement description)."""
    services = [ViewService(catalog=MICRO_TABLES) for _ in range(n_shards)]
    servers = [ViewServer(svc).start() for svc in services]
    router = ClusterRouter(
        [[("127.0.0.1", srv.port)] for srv in servers], MICRO_TABLES
    ).start()
    client = Client(port=router.port)
    try:
        client.create_view("per_b", SQL_PER_B)
        stream = client.subscribe("per_b")

        acc = GMR()
        start = time.perf_counter()
        for relation, batch in batches:
            client.batch(relation, batch)
        token = client.drain()
        for delta in stream.read_until_mark(token):
            acc.add_inplace(delta.delta)
        elapsed = time.perf_counter() - start

        snap = client.snapshot("per_b")
        # The merged changefeed accumulates to exactly the gathered
        # snapshot — the cross-shard barrier guarantees it.
        assert acc == snap, "merged stream diverged from snapshot"

        placement = router.shardmap.plan.describe(MICRO_TABLES)
        stream.close()
        return elapsed, snap, placement
    finally:
        client.close()
        router.close()
        for srv in servers:
            srv.close()


def main() -> None:
    tables = generate_micro(sf=SF, seed=7)
    batches = list(
        stream_batches(tables, BATCH_SIZE, relations=frozenset({"R", "S"}))
    )
    n_tuples = sum(
        sum(abs(m) for m in batch.data.values()) for _, batch in batches
    )
    print("=== sharded serving cluster (scatter/gather router) ===")
    print(f"view: {SQL_PER_B}")
    print(f"stream: {len(batches)} batches, {n_tuples} tuples\n")

    reference = None
    print(f"{'shards':>7} {'elapsed':>9} {'throughput':>12}   placement")
    for n in SHARD_COUNTS:
        elapsed, snap, placement = run_cluster(n, batches)
        if reference is None:
            reference = snap
        # Every shard count serves the identical merged result.
        assert snap == reference, f"{n}-shard result diverged"
        print(f"{n:>7} {elapsed:>8.3f}s {n_tuples / elapsed:>10.0f}/s"
              f"   {placement}")

    print(f"\nmerged view has {len(reference)} groups; every shard "
          "count produced the identical snapshot and a changefeed that "
          "accumulates to it (checked).")
    print("the router co-partitioned R and S on the join column, so "
          "each shard maintained only its slice.")


if __name__ == "__main__":
    main()
