"""Partitioning exploration and fault-tolerant distributed maintenance.

Two of the system's operational features on one pipeline:

1. the :class:`PartitioningAdvisor` enumerates and ranks partitioning
   strategies for TPC-H Q3 (the paper's Section 6.2 heuristic vs
   alternatives), and
2. the best strategy runs on a :class:`FaultTolerantCluster` with
   periodic checkpoints and an injected worker failure — the view
   survives the failure bit-for-bit.

Run:  python examples/fault_tolerant_pipeline.py
"""

from __future__ import annotations

from repro.compiler import compile_query
from repro.distributed import (
    CheckpointPolicy,
    FailureInjector,
    FaultTolerantCluster,
    PartitioningAdvisor,
)
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import TPCH_QUERIES


def main() -> None:
    spec = TPCH_QUERIES["Q3"]
    program = compile_query(spec.query, "Q3", updatable=spec.updatable)

    # ------------------------------------------------------------------
    # 1. Rank partitioning strategies.
    # ------------------------------------------------------------------
    advisor = PartitioningAdvisor(program, spec.key_hints)
    print("=== partitioning strategies for Q3 (static plan cost) ===")
    print(f"{'strategy':>16} {'transformers':>13} {'jobs':>5} {'stages':>7}")
    for cost in advisor.rank():
        print(
            f"{cost.candidate:>16} {cost.transformers:>13} "
            f"{cost.jobs:>5} {cost.stages:>7}"
        )

    best_cost, dprog = advisor.best()
    print(f"\nchosen strategy: {best_cost.candidate}")

    # ------------------------------------------------------------------
    # 2. Run it with checkpoints and an injected failure.
    # ------------------------------------------------------------------
    prepared = prepare_stream(spec, 60, sf=0.0005, max_batches=12)
    cluster = FaultTolerantCluster(
        dprog,
        n_workers=4,
        policy=CheckpointPolicy(interval=4),
        injector=FailureInjector(failures={7: 2}),  # worker 2 dies
    )
    _preload_static(cluster.cluster, prepared, dprog)

    reference = prepared.fresh_static()
    for i, (relation, batch) in enumerate(prepared.batches):
        latency = cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
        marker = ""
        if cluster.recoveries and cluster.recoveries[-1].batch_index == i:
            ev = cluster.recoveries[-1]
            marker = (
                f"  <- worker {ev.failed_worker} failed; restored from "
                f"checkpoint @{ev.restored_from}, replayed "
                f"{ev.replayed_batches} batches"
            )
        print(f"batch {i:2d} ({relation:>8}): {latency*1e3:7.1f} ms{marker}")

    assert cluster.snapshot() == evaluate(spec.query, reference)
    print("\nview verified against from-scratch evaluation after recovery")
    print(
        f"checkpoints taken: {len(cluster.checkpoint_latencies_s)}, "
        f"total checkpoint time: "
        f"{sum(cluster.checkpoint_latencies_s)*1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
