"""Batch-size tuning: finding the "best bite size" for a query.

The paper's title question — in local execution, throughput usually
peaks at batches of 1,000-10,000 tuples, and for many queries the
specialized single-tuple engine is hard to beat.  This example sweeps
batch sizes for a handful of TPC-H queries and prints the normalized
throughput series (a miniature of Figure 7), then reports each query's
best bite size.

Run:  python examples/batch_size_tuning.py
"""

from __future__ import annotations

from repro.harness import batch_size_sweep
from repro.workloads import TPCH_QUERIES

QUERIES = ("Q1", "Q6", "Q13", "Q22")
BATCH_SIZES = (1, 10, 100, 1_000)


def main() -> None:
    print("normalized throughput (single-tuple engine = 1.0)\n")
    header = f"{'query':>6} {'Single':>8}" + "".join(
        f"{bs:>9}" for bs in BATCH_SIZES
    )
    print(header)
    print("-" * len(header))

    for name in QUERIES:
        spec = TPCH_QUERIES[name]
        results = batch_size_sweep(
            spec, batch_sizes=BATCH_SIZES, sf=0.0003, max_batches=40
        )
        baseline = results[0].virtual_throughput
        cells = [f"{1.0:>8.2f}"]
        best_label, best_value = "Single", 1.0
        for r in results[1:]:
            norm = r.virtual_throughput / baseline
            cells.append(f"{norm:>9.2f}")
            if norm > best_value:
                best_label, best_value = str(r.batch_size), norm
        print(f"{name:>6} " + "".join(cells) + f"   best: {best_label}")

    print()
    print("Q1 and Q22 collapse their batches onto small key domains, so")
    print("batching wins big; Q13's maintenance code is simple enough")
    print("that the single-tuple engine stays competitive — the paper's")
    print('refutation of "batching always wins".')


if __name__ == "__main__":
    main()
