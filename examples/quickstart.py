"""Quickstart: incrementally maintain a 3-way join-count view.

This is the paper's running example (Example 2.1/2.2): the query
counts tuples of R(A,B) |><| S(B,C) |><| T(C,D) grouped by B.  We
compile it with the recursive IVM compiler, inspect the generated
trigger program, and stream update batches through the engine while
checking the result against a from-scratch evaluation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.query.builder import join, rel, sum_over
from repro.ring import GMR


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Define the view: Sum_[B](R(A,B) * S(B,C) * T(C,D))
    # ------------------------------------------------------------------
    query = sum_over(
        ["b"],
        join(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d")),
    )

    # ------------------------------------------------------------------
    # 2. Compile to a recursive maintenance program.
    # ------------------------------------------------------------------
    program = compile_query(query, "QCOUNT")
    program = apply_batch_preaggregation(program)

    print("=== compiled maintenance program ===")
    print(program.describe())
    print()

    # ------------------------------------------------------------------
    # 3. Stream random update batches through the engine.
    # ------------------------------------------------------------------
    engine = RecursiveIVMEngine(program, mode="batch")
    reference = Database()  # mirror of the raw base tables
    rng = random.Random(0)

    def random_batch(cols: int) -> GMR:
        batch = GMR()
        for _ in range(50):
            batch.add_tuple(
                tuple(rng.randint(0, 9) for _ in range(cols)), 1
            )
        return batch

    for step in range(1, 11):
        relation = ("R", "S", "T")[step % 3]
        batch = random_batch(2)
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)

        maintained = engine.snapshot()
        recomputed = evaluate(query, reference)
        status = "OK" if maintained == recomputed else "DIVERGED"
        print(
            f"batch {step:2d} -> {relation}: "
            f"{len(maintained)} groups, check={status}"
        )
        assert maintained == recomputed

    print()
    print("=== final view contents (B -> count) ===")
    for t, m in sorted(engine.snapshot().items()):
        print(f"  B={t[0]}: {m}")

    views = engine.memory_footprint()
    print(f"\nmaterialized {program.view_count()} views, {views} tuples total")


if __name__ == "__main__":
    main()
