"""Clickstream analysis: one of the intro's motivating applications.

A site monitors a click stream joined against two slowly-changing
dimension tables, and wants a per-campaign revenue view refreshed with
low latency:

    SELECT campaign, SUM(spend)
    FROM   CLICKS c JOIN USERS u ON c.user = u.user
                    JOIN ADS a   ON c.ad = a.ad
    WHERE  u.status = 1            -- active users only
    GROUP BY a.campaign

The example compares three maintenance strategies on the same stream —
full re-evaluation, classical first-order IVM, and recursive IVM with
batch pre-aggregation — and prints their relative view-refresh costs,
a miniature of the paper's Figure 8.

Run:  python examples/clickstream_monitoring.py
"""

from __future__ import annotations

import random
import time

from repro.baselines import ClassicalIVMEngine, ReevalEngine
from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database
from repro.exec import RecursiveIVMEngine
from repro.metrics import Counters
from repro.query.builder import cmp, join, rel, sum_over, value
from repro.ring import GMR

N_USERS = 300
N_ADS = 60
N_CAMPAIGNS = 8
N_BATCHES = 40
BATCH_SIZE = 100


def build_query():
    """Per-campaign revenue over active users."""
    return sum_over(
        ["campaign"],
        join(
            rel("CLICKS", "user", "ad", "spend"),
            rel("USERS", "user", "status"),
            rel("ADS", "ad", "campaign"),
            cmp("status", "==", 1),
            value("spend"),
        ),
    )


def dimension_tables(rng: random.Random) -> Database:
    db = Database()
    db.insert_rows(
        "USERS",
        [(u, rng.randint(0, 1)) for u in range(N_USERS)],
    )
    db.insert_rows(
        "ADS",
        [(a, rng.randrange(N_CAMPAIGNS)) for a in range(N_ADS)],
    )
    return db


def click_batches(rng: random.Random):
    for _ in range(N_BATCHES):
        batch = GMR()
        for _ in range(BATCH_SIZE):
            batch.add_tuple(
                (
                    rng.randrange(N_USERS),
                    rng.randrange(N_ADS),
                    rng.randint(1, 50),
                ),
                1,
            )
        yield batch


def run(engine, batches, counters: Counters) -> tuple[float, int]:
    start = time.perf_counter()
    for batch in batches:
        engine.on_batch("CLICKS", batch)
    return time.perf_counter() - start, counters.virtual_instructions()


def main() -> None:
    query = build_query()
    rng = random.Random(1)
    dims = dimension_tables(rng)
    batches = list(click_batches(rng))
    total_tuples = N_BATCHES * BATCH_SIZE

    print(f"stream: {total_tuples} clicks in {N_BATCHES} batches of {BATCH_SIZE}")
    print(f"dimensions: {N_USERS} users, {N_ADS} ads, {N_CAMPAIGNS} campaigns")
    print()

    results = {}
    engines = {}

    for label in ("re-evaluation", "classical IVM", "recursive IVM"):
        counters = Counters()
        if label == "re-evaluation":
            engine = ReevalEngine(query, counters=counters)
        elif label == "classical IVM":
            engine = ClassicalIVMEngine(query, counters=counters)
        else:
            program = compile_query(
                query, "REV", updatable=frozenset({"CLICKS"})
            )
            program = apply_batch_preaggregation(program)
            engine = RecursiveIVMEngine(
                program, mode="batch", counters=counters
            )
        engine.initialize(dims.copy())
        elapsed, vinstr = run(engine, batches, counters)
        results[label] = (elapsed, vinstr)
        engines[label] = engine
        print(
            f"{label:>15}: {elapsed*1e3:8.1f} ms total, "
            f"{total_tuples/elapsed:>10.0f} clicks/s, "
            f"{vinstr:>10} virtual instructions"
        )

    # All three strategies maintain the same view.
    reference = engines["re-evaluation"].result()
    for label, engine in engines.items():
        assert engine.result() == reference, f"{label} diverged"

    base = results["re-evaluation"][1]
    print()
    print("virtual-instruction speedup over re-evaluation:")
    for label, (_, vinstr) in results.items():
        print(f"  {label:>15}: {base / vinstr:8.1f}x")

    print()
    print("top campaigns by revenue:")
    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    for (campaign,), revenue in top:
        print(f"  campaign {campaign}: {revenue}")


if __name__ == "__main__":
    main()
