"""Clickstream analysis: one of the intro's motivating applications.

A site monitors a click stream joined against two slowly-changing
dimension tables, and wants a per-campaign revenue view refreshed with
low latency:

    SELECT campaign, SUM(spend)
    FROM   CLICKS c JOIN USERS u ON c.user = u.user
                    JOIN ADS a   ON c.ad = a.ad
    WHERE  u.status = 1            -- active users only
    GROUP BY a.campaign

The example hosts the view three times on one :class:`ViewService`
session — once per maintenance strategy (full re-evaluation, classical
first-order IVM, recursive IVM with batch pre-aggregation) — so a
single shared click stream is routed once and every strategy maintains
its own copy.  A push subscription on the recursive-IVM view receives
per-batch revenue deltas; per-view virtual-instruction counters give
the strategies' relative view-refresh costs, a miniature of the
paper's Figure 8.

Run:  python examples/clickstream_monitoring.py
"""

from __future__ import annotations

import random
import time

from repro.eval import Database
from repro.metrics import Counters
from repro.query.builder import cmp, join, rel, sum_over, value
from repro.ring import GMR
from repro.service import ViewService

N_USERS = 300
N_ADS = 60
N_CAMPAIGNS = 8
N_BATCHES = 40
BATCH_SIZE = 100

STRATEGY_BACKENDS = {
    "re-evaluation": "reeval",
    "classical IVM": "civm",
    "recursive IVM": "rivm-batch",
}


def build_query():
    """Per-campaign revenue over active users."""
    return sum_over(
        ["campaign"],
        join(
            rel("CLICKS", "user", "ad", "spend"),
            rel("USERS", "user", "status"),
            rel("ADS", "ad", "campaign"),
            cmp("status", "==", 1),
            value("spend"),
        ),
    )


def dimension_tables(rng: random.Random) -> Database:
    db = Database()
    db.insert_rows(
        "USERS",
        [(u, rng.randint(0, 1)) for u in range(N_USERS)],
    )
    db.insert_rows(
        "ADS",
        [(a, rng.randrange(N_CAMPAIGNS)) for a in range(N_ADS)],
    )
    return db


def click_batches(rng: random.Random):
    for _ in range(N_BATCHES):
        batch = GMR()
        for _ in range(BATCH_SIZE):
            batch.add_tuple(
                (
                    rng.randrange(N_USERS),
                    rng.randrange(N_ADS),
                    rng.randint(1, 50),
                ),
                1,
            )
        yield batch


def main() -> None:
    query = build_query()
    rng = random.Random(1)
    batches = list(click_batches(rng))
    total_tuples = N_BATCHES * BATCH_SIZE

    print(f"stream: {total_tuples} clicks in {N_BATCHES} batches of {BATCH_SIZE}")
    print(f"dimensions: {N_USERS} users, {N_ADS} ads, {N_CAMPAIGNS} campaigns")
    print()

    # One service session: static dimensions pre-loaded, then the same
    # view definition hosted on three backends side by side.
    service = ViewService(base=dimension_tables(rng))
    counters: dict[str, Counters] = {}
    for label, backend in STRATEGY_BACKENDS.items():
        counters[label] = Counters()
        service.create_view(
            label,
            query,
            backend=backend,
            updatable=frozenset({"CLICKS"}),
            counters=counters[label],
        )

    # Push subscription: accumulate revenue deltas as they arrive.
    accumulated = GMR()
    n_events = 0

    def on_delta(event) -> None:
        nonlocal n_events
        n_events += 1
        accumulated.add_inplace(event.delta)

    service.subscribe("recursive IVM", on_delta)

    start = time.perf_counter()
    for batch in batches:
        service.on_batch("CLICKS", batch)
    elapsed = time.perf_counter() - start

    print(
        f"served {len(service)} views over one stream in "
        f"{elapsed*1e3:.1f} ms ({total_tuples/elapsed:.0f} clicks/s "
        "shared-stream)"
    )
    print(f"push subscription delivered {n_events} delta events")
    print()

    # All three strategies maintain the same view, and the subscription
    # deltas accumulate to exactly the served snapshot.
    reference = service.snapshot("re-evaluation")
    for label in STRATEGY_BACKENDS:
        assert service.snapshot(label) == reference, f"{label} diverged"
    assert accumulated == reference, "subscription deltas diverged"

    base = counters["re-evaluation"].virtual_instructions()
    print("virtual-instruction speedup over re-evaluation:")
    for label, c in counters.items():
        print(f"  {label:>15}: {base / c.virtual_instructions():8.1f}x")

    print()
    print("top campaigns by revenue:")
    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    for (campaign,), revenue in top:
        print(f"  campaign {campaign}: {revenue}")


if __name__ == "__main__":
    main()
