"""SQL in, incremental maintenance out.

The frontend parses a SQL subset (joins, filters, GROUP BY, SUM/COUNT,
DISTINCT, correlated nested aggregates, EXISTS) into the query algebra
and hands it to the same compiler as the hand-written workloads.  This
example maintains the paper's Example 3.1 query — written as SQL —
over a transaction stream.

Run:  python examples/sql_frontend.py
"""

from __future__ import annotations

import random

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.query import parse_sql
from repro.ring import GMR

CATALOG = {
    "ORDERS": ("okey", "ckey", "total"),
    "CUSTOMER": ("ckey", "limit"),
}

SQL = """
SELECT COUNT(*)
FROM CUSTOMER
WHERE CUSTOMER.limit <
      (SELECT SUM(total) FROM ORDERS WHERE ORDERS.ckey = CUSTOMER.ckey)
"""


def main() -> None:
    print("input SQL:")
    print(SQL)
    query = parse_sql(SQL, CATALOG)
    print("lowered algebra:")
    print(f"  {query!r}\n")

    program = apply_batch_preaggregation(
        compile_query(query, "OVERLIMIT", updatable=frozenset({"ORDERS"}))
    )
    print("compiled maintenance program:")
    print(program.describe())
    print()

    rng = random.Random(11)
    n_customers = 60
    static = Database()
    static.insert_rows(
        "CUSTOMER",
        [(c, rng.randint(500, 3000)) for c in range(n_customers)],
    )

    engine = RecursiveIVMEngine(program, mode="batch")
    engine.initialize(static.copy())
    reference = static.copy()

    for step in range(10):
        batch = GMR()
        for _ in range(40):
            batch.add_tuple(
                (rng.randrange(10_000), rng.randrange(n_customers),
                 rng.randint(10, 400)),
                1,
            )
        engine.on_batch("ORDERS", batch)
        reference.apply_update("ORDERS", batch)
        over = engine.snapshot().get((), 0)
        assert engine.snapshot() == evaluate(query, reference)
        print(f"after batch {step + 1:2d}: {over:3} customers over limit")

    print("\nmaintained view verified against re-evaluation at every step")


if __name__ == "__main__":
    main()
